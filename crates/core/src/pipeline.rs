//! The full D1LC pipeline — Algorithm 7 and Theorem 1.
//!
//! `solve` runs, for each degree range `(T(x), x]` of the ladder
//! `Δ, T(Δ), T(T(Δ)), …` (paper: `T(x) = log⁷ x`):
//!
//! 1. `ComputeACD` on the range's uncolored nodes;
//! 2. the sparse/uneven path (Alg. 8);
//! 3. the dense path (Alg. 9);
//!
//! then a low-degree fallback of repeated `TryRandomColor` rounds (the
//! shattering-regime randomized part), the deterministic cleanup, and a
//! final *repair* sweep — a central pass that colors any node the
//! distributed phases left uncolored (w.h.p. none beyond shattered
//! leftovers handled by cleanup; the count is reported honestly in
//! [`Stats::repairs`]).
//!
//! The output is **always** a proper list coloring: every distributed
//! adoption is conflict-free by construction (see `passes::digest_adoption`
//! and the mutual-exclusion arguments in `multitrial`), and repair covers
//! the rest.

use crate::config::ParamProfile;
use crate::dense::color_dense;
use crate::driver::{Driver, EngineMode};
use crate::palette::Palette;
use crate::passes::CodecSetupPass;
use crate::shattering::cleanup;
use crate::sparse::color_sparse;
use crate::state::NodeState;
use crate::wire::ColorCodec;
use congest::{PassLog, SimConfig, SimError};
use graphs::palette::ListAssignment;
use graphs::{Color, Graph, NodeId};
use prand::mix::mix2;
use std::collections::BTreeMap;

/// Options for [`solve`].
///
/// `PartialEq` compares every field — two equal options (plus equal
/// graph and lists) fully determine the [`SolveResult`], which is what
/// lets the serving layer ([`crate::server`]) memoize responses. That
/// includes asynchronous execution: [`SimConfig::sched`] is part of
/// `sim` and thus of the memo key, and since the α-synchronizer keeps
/// transcripts byte-identical to the synchronous engine, a memo hit
/// across schedule plans would *also* be sound for the coloring — but
/// plans still key separately because the response carries the plan's
/// own synchronizer overhead counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOptions {
    /// Constant profile (laptop by default).
    pub profile: ParamProfile,
    /// Master seed (drives all node randomness and shared hash families).
    pub seed: u64,
    /// Engine configuration (bandwidth policy, thread count, round cap,
    /// fault plan, schedule adversary).
    pub sim: SimConfig,
    /// Use the §5 *uniform* ACD (explicit pairwise hashing + samplers +
    /// ECC, `acd_uniform`) instead of the representative-hash ACD. The
    /// rest of the pipeline is shared.
    pub uniform_acd: bool,
    /// Engine path for the solve's passes: one persistent
    /// [`congest::Session`] by default; the per-pass and legacy-plane
    /// paths produce byte-identical results and exist for benchmarking
    /// and differential testing (experiment E0b).
    pub engine: EngineMode,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            profile: ParamProfile::laptop(),
            seed: 0xc010_41f0,
            sim: SimConfig::default(),
            uniform_acd: false,
            engine: EngineMode::Session,
        }
    }
}

impl SolveOptions {
    /// Default options with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SolveOptions {
            seed,
            ..Default::default()
        }
    }
}

/// Outcome statistics of one solve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// How many nodes each pass colored, by pass name.
    pub colored_by: BTreeMap<&'static str, usize>,
    /// Nodes the distributed pipeline failed to color (fixed centrally).
    pub repairs: usize,
    /// Degree-range phases that actually ran.
    pub phases: usize,
    /// Fault-induced conflicts the pre-repair sweep had to break: edges
    /// whose endpoints adopted equal colors because an active
    /// [`congest::FaultPlan`] lost or delayed the messages the
    /// conflict-freedom argument relies on. Always `0` under
    /// `FaultPlan::none()` — the distributed adoptions are then
    /// conflict-free by construction.
    pub fault_conflicts: usize,
    /// Colored nodes the quarantine sweep stripped because they crashed
    /// at some point of the solve (crash-stop or recovered alike): a node
    /// that was down mid-decision may hold a color it never defended, so
    /// its adoption is forfeited and the `finish` central repair recolors
    /// it against the final neighborhood. Always `0` without crash fates.
    pub quarantined: usize,
}

/// Result of [`solve`]: a proper coloring plus metrics.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// One color per node, proper with respect to the lists.
    pub coloring: Vec<Color>,
    /// Per-pass round/bit metrics.
    pub log: PassLog,
    /// Outcome statistics.
    pub stats: Stats,
}

impl SolveResult {
    /// Total CONGEST rounds across all passes.
    pub fn rounds(&self) -> u64 {
        self.log.total_rounds()
    }

    /// Bandwidth-normalized rounds at the given per-edge bandwidth.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        self.log.normalized_rounds(bandwidth)
    }

    /// Round totals per pipeline phase (`setup`, `range-1`, …, `fallback`,
    /// `cleanup`), in execution order — the attribution the scenario
    /// sweeps report.
    pub fn phase_breakdown(&self) -> Vec<(String, u64)> {
        self.log.phase_breakdown()
    }
}

/// Build fresh node states from a list assignment (building block for
/// custom drivers and benches).
pub fn initial_states(
    g: &Graph,
    lists: &ListAssignment,
    profile: &ParamProfile,
    seed: u64,
) -> Vec<NodeState> {
    (0..g.n())
        .map(|v| {
            let d = g.degree(v as NodeId);
            let codec = ColorCodec::new(profile, mix2(seed, 0xc0dec), g.n(), lists.color_bits(), d);
            NodeState::new(
                v as NodeId,
                Palette::new(lists.list(v as NodeId).to_vec()),
                codec,
                d,
            )
        })
        .collect()
}

/// First color of `v`'s list unused by any colored neighbor, resolved
/// through the caller's reusable sorted scratch — the one first-free
/// rule shared by the central repair sweep and the greedy oracle
/// ([`crate::baseline::greedy_oracle`]).
pub(crate) fn first_free_color(
    g: &Graph,
    lists: &ListAssignment,
    coloring: &[Option<Color>],
    v: usize,
    taken: &mut Vec<Color>,
) -> Option<Color> {
    taken.clear();
    taken.extend(
        g.neighbors(v as NodeId)
            .iter()
            .filter_map(|&u| coloring[u as usize]),
    );
    taken.sort_unstable();
    lists
        .list(v as NodeId)
        .iter()
        .copied()
        .find(|c| taken.binary_search(c).is_err())
}

/// Break fault-induced conflicts before the central repair sweep: for
/// every edge whose endpoints hold the same color, uncolor one endpoint
/// so [`finish`]'s first-free repair can recolor it properly.
///
/// Under [`congest::FaultPlan::none()`] this never fires — the
/// distributed adoptions are conflict-free by construction. Under an
/// active plan a dropped or delayed decline can let both endpoints keep
/// a contested color; detection here is what makes the pipeline degrade
/// gracefully (wrong answers become repairs, never silent invalidity).
///
/// The victim is the *starved* endpoint when exactly one endpoint was
/// perturbed by the faulty network (`starved` is the sorted
/// [`congest::PassLog::starved_union`]) — it made its decision on
/// incomplete information, so its neighbor's adoption is the trustworthy
/// one. Ties break to the higher id. One sweep suffices: colors only
/// ever *disappear* during the sweep, so no new conflict can appear
/// behind it.
///
/// **Quarantine** runs first: every node in `crashed` (the sorted
/// [`congest::PassLog::crashed_union`]) forfeits its color outright — a
/// node that was down at any point may hold a color it adopted before
/// crashing and never defended against later contenders, and a recovered
/// node may have re-entered mid-protocol with stale state. Stripping them
/// *before* the conflict sweep keeps the sweep's one-pass argument intact
/// (colors still only disappear), and [`finish`]'s first-free repair —
/// always possible on (deg+1)-lists — recolors them against the final
/// neighborhood, so `check_coloring` holds at any crash rate ≤ 1.0.
/// Returns `(fault_conflicts, quarantined)`.
pub(crate) fn resolve_fault_conflicts(
    g: &Graph,
    states: &mut [NodeState],
    starved: &[NodeId],
    crashed: &[NodeId],
) -> (usize, usize) {
    let mut quarantined = 0usize;
    for &v in crashed {
        let st = &mut states[v as usize];
        if st.color.is_some() {
            st.color = None;
            st.colored_by = None;
            quarantined += 1;
        }
    }
    let mut conflicts = 0usize;
    for v in 0..g.n() {
        let Some(cv) = states[v].color else { continue };
        for &u in g.neighbors(v as NodeId) {
            let u = u as usize;
            // Visit each undirected edge once, from its lower endpoint.
            if u <= v || states[u].color != Some(cv) {
                continue;
            }
            let starved_v = starved.binary_search(&(v as NodeId)).is_ok();
            let starved_u = starved.binary_search(&(u as NodeId)).is_ok();
            let victim = match (starved_v, starved_u) {
                (true, false) => v,
                _ => u,
            };
            states[victim].color = None;
            states[victim].colored_by = None;
            conflicts += 1;
            if victim == v {
                break; // v is uncolored; its remaining edges can't conflict
            }
        }
    }
    (conflicts, quarantined)
}

/// Finish a solve: repair stragglers centrally, assemble the coloring and
/// stats, and verify validity.
pub(crate) fn finish(
    g: &Graph,
    lists: &ListAssignment,
    states: Vec<NodeState>,
    log: PassLog,
    phases: usize,
    fault_conflicts: usize,
    quarantined: usize,
) -> SolveResult {
    let mut coloring: Vec<Option<Color>> = states.iter().map(|s| s.color).collect();
    let mut stats = Stats {
        phases,
        fault_conflicts,
        quarantined,
        ..Default::default()
    };
    for st in &states {
        if let Some(name) = st.colored_by {
            *stats.colored_by.entry(name).or_insert(0) += 1;
        }
    }
    // Central repair: pick any list color unused by neighbors. Possible
    // because |list(v)| ≥ d_v + 1. One sorted scratch reused across
    // nodes — no per-node hash-set build.
    let mut taken: Vec<Color> = Vec::new();
    for v in 0..g.n() {
        if coloring[v].is_none() {
            let c = first_free_color(g, lists, &coloring, v, &mut taken)
                .expect("a (deg+1)-list always has a free color");
            coloring[v] = Some(c);
            stats.repairs += 1;
        }
    }
    let coloring: Vec<Color> = coloring
        .into_iter()
        .map(|c| c.expect("filled above"))
        .collect();
    debug_assert_eq!(graphs::palette::check_coloring(g, lists, &coloring), Ok(()));
    SolveResult {
        coloring,
        log,
        stats,
    }
}

/// Solve the (degree+1)-list-coloring problem on `g` with `lists`.
///
/// # Errors
///
/// Propagates engine errors: strict-bandwidth violations, or a
/// [`SimError::FaultInjected`] abort when `opts.sim.fault` carries an
/// active [`congest::FaultPlan`] with a nonzero abort rate.
///
/// # Panics
///
/// Panics if `lists` is not a valid (degree+1)-list assignment for `g`.
///
/// # Example
///
/// ```
/// use d1lc::{solve, SolveOptions};
///
/// let g = graphs::gen::gnp(120, 0.1, 7);
/// let lists = graphs::palette::degree_plus_one_lists(&g);
/// let result = solve(&g, &lists, SolveOptions::seeded(1)).unwrap();
/// assert_eq!(graphs::palette::check_coloring(&g, &lists, &result.coloring), Ok(()));
/// ```
pub fn solve(
    g: &Graph,
    lists: &ListAssignment,
    opts: SolveOptions,
) -> Result<SolveResult, SimError> {
    assert!(
        lists.is_degree_plus_one(g),
        "lists must give every node ≥ deg+1 colors"
    );
    let sim = SimConfig {
        seed: opts.seed,
        ..opts.sim
    };
    let mut driver = Driver::with_engine(g, sim, opts.engine);
    solve_on(&mut driver, g, lists, &opts)
}

/// Run the full pipeline on a caller-provided [`Driver`] — the engine
/// (and therefore any pooled session behind it) is the caller's to own
/// and recycle. `driver.log` is consumed into the result. This is how
/// [`crate::service::SolveService`] runs solves on reused sessions;
/// results are byte-identical to [`solve`] with the same options.
///
/// # Errors
///
/// As [`solve`]. On error the driver (and its session) remains valid.
pub(crate) fn solve_on(
    driver: &mut Driver<'_>,
    g: &Graph,
    lists: &ListAssignment,
    opts: &SolveOptions,
) -> Result<SolveResult, SimError> {
    let profile = opts.profile;
    let mut states = initial_states(g, lists, &profile, opts.seed);

    // One-time codec setup (App. D.3 hash indices).
    driver.begin_phase("setup");
    states = driver.run_pass("codec-setup", states, CodecSetupPass::new)?;

    // Degree-range phases (Alg. 7).
    let delta = g.max_degree();
    let ladder = profile.degree_ladder(delta);
    let floor = profile.degree_threshold_floor;
    let mut phases = 0usize;
    for (i, &hi) in ladder.iter().enumerate() {
        let lo = ladder.get(i + 1).copied().unwrap_or(floor);
        if lo >= hi {
            continue;
        }
        let in_range = |st: &NodeState| {
            let d = g.degree(st.id);
            d > lo && d <= hi && st.uncolored()
        };
        if !states.iter().any(in_range) {
            continue;
        }
        phases += 1;
        driver.begin_phase(format!("range-{phases}"));
        for st in &mut states {
            st.reset_phase();
        }
        states = driver.activate(states, in_range)?;
        let phase_seed = mix2(opts.seed, phases as u64);
        states = if opts.uniform_acd {
            crate::acd_uniform::compute_acd_uniform(driver, states, &profile, phase_seed)?
        } else {
            crate::acd::compute_acd(driver, states, &profile, phase_seed)?
        };
        states = color_sparse(driver, states, &profile, phase_seed)?;
        states = color_dense(driver, states, &profile, phase_seed, hi)?;
    }

    // Low-degree fallback: repeated random color trials.
    driver.begin_phase("fallback");
    states = driver.activate(states, |st| st.uncolored())?;
    for t in 0..profile.fallback_trials {
        if Driver::uncolored_count(&states) == 0 {
            break;
        }
        states = driver.try_color(states, "fallback")?;
        // Re-activating is unnecessary: TryColor reads activity flags that
        // only shrink, and adopted nodes self-deactivate.
        let _ = t;
    }

    // Deterministic cleanup of the shattered leftovers.
    if Driver::uncolored_count(&states) > 0 {
        driver.begin_phase("cleanup");
        states = cleanup(driver, states)?;
    }

    // Under an active fault plan, lost/late messages can break the
    // conflict-freedom of distributed adoptions, and a crashed node may
    // hold a color it never defended; quarantine-and-detect-and-repair
    // turns both into honest repairs instead of an invalid coloring.
    let (fault_conflicts, quarantined) = if opts.sim.fault.is_active() {
        resolve_fault_conflicts(
            g,
            &mut states,
            &driver.log.starved_union(),
            &driver.log.crashed_union(),
        )
    } else {
        (0, 0)
    };

    Ok(finish(
        g,
        lists,
        states,
        std::mem::take(&mut driver.log),
        phases,
        fault_conflicts,
        quarantined,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use graphs::palette::{
        check_coloring, degree_plus_one_lists, delta_plus_one_lists, random_lists,
        shared_window_lists,
    };

    fn assert_solves(g: &Graph, lists: &ListAssignment, seed: u64) -> SolveResult {
        let result = solve(g, lists, SolveOptions::seeded(seed)).unwrap();
        assert_eq!(check_coloring(g, lists, &result.coloring), Ok(()));
        result
    }

    #[test]
    fn colors_gnp_with_d1c_lists() {
        let g = gen::gnp(200, 0.06, 3);
        let lists = degree_plus_one_lists(&g);
        let r = assert_solves(&g, &lists, 7);
        assert!(r.rounds() > 0);
    }

    #[test]
    fn colors_clique_blend_with_random_lists() {
        let (g, _) = gen::planted_acd(3, 28, 0.04, 80, 0.05, 5);
        let lists = random_lists(&g, 48, 0, 9);
        let r = assert_solves(&g, &lists, 11);
        // The dense machinery must be exercised.
        assert!(r.stats.phases >= 1, "no phase ran");
    }

    #[test]
    fn colors_structured_graphs() {
        for (g, seed) in [
            (gen::cycle(40), 1u64),
            (gen::star(30), 2),
            (gen::complete(40), 3),
            (gen::grid(8, 9), 4),
            (gen::complete_bipartite(15, 20), 5),
        ] {
            let lists = degree_plus_one_lists(&g);
            assert_solves(&g, &lists, seed);
        }
    }

    #[test]
    fn colors_with_delta_plus_one_lists() {
        let g = gen::gnp(100, 0.15, 8);
        let lists = delta_plus_one_lists(&g);
        assert_solves(&g, &lists, 13);
    }

    #[test]
    fn colors_with_shared_window_lists() {
        let g = gen::gnp(80, 0.2, 2);
        let lists = shared_window_lists(&g, g.max_degree() as u64 + 8, 4);
        assert_solves(&g, &lists, 17);
    }

    #[test]
    fn colors_large_color_space() {
        let g = gen::gnp(60, 0.15, 6);
        let lists = random_lists(&g, 60, 2, 3);
        let r = assert_solves(&g, &lists, 19);
        // With 60-bit colors the codec must be in hashed mode throughout.
        let _ = r;
    }

    #[test]
    fn empty_and_tiny_graphs() {
        for n in [0usize, 1, 2, 3] {
            let g = gen::path(n);
            let lists = degree_plus_one_lists(&g);
            assert_solves(&g, &lists, n as u64);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::gnp(80, 0.1, 4);
        let lists = degree_plus_one_lists(&g);
        let a = solve(&g, &lists, SolveOptions::seeded(21)).unwrap();
        let b = solve(&g, &lists, SolveOptions::seeded(21)).unwrap();
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.rounds(), b.rounds());
    }

    #[test]
    fn repairs_are_rare() {
        let g = gen::gnp(150, 0.08, 9);
        let lists = degree_plus_one_lists(&g);
        let r = assert_solves(&g, &lists, 23);
        assert_eq!(
            r.stats.repairs, 0,
            "distributed pipeline needed central repair"
        );
    }

    #[test]
    fn uniform_acd_pipeline_solves_end_to_end() {
        let (g, _) = gen::planted_acd(3, 24, 0.05, 60, 0.05, 6);
        let lists = random_lists(&g, 48, 0, 4);
        let opts = SolveOptions {
            uniform_acd: true,
            ..SolveOptions::seeded(7)
        };
        let r = solve(&g, &lists, opts).expect("uniform solve");
        assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
        assert!(r.stats.phases >= 1);
    }

    #[test]
    fn phase_breakdown_attributes_all_rounds() {
        let g = gen::gnp(160, 0.4, 5);
        let lists = degree_plus_one_lists(&g);
        let r = assert_solves(&g, &lists, 31);
        let phases = r.phase_breakdown();
        // Every recorded round lands in exactly one phase bucket.
        assert_eq!(phases.iter().map(|(_, x)| x).sum::<u64>(), r.rounds());
        assert_eq!(phases[0].0, "setup");
        assert!(
            phases.iter().any(|(name, _)| name.starts_with("range-")),
            "a degree-range phase must have run: {phases:?}"
        );
        // No pass escaped attribution (the empty label never appears).
        assert!(phases.iter().all(|(name, _)| !name.is_empty()));
    }

    #[test]
    fn high_degree_graphs_use_phases() {
        // Δ must exceed the ladder floor for a phase to run.
        let g = gen::gnp(160, 0.4, 5);
        let lists = degree_plus_one_lists(&g);
        let r = assert_solves(&g, &lists, 29);
        assert!(r.stats.phases >= 1);
        assert!(
            r.stats.colored_by.len() > 1,
            "expected multiple passes to color"
        );
    }
}
