//! The sparse/uneven path — Algorithm 8 and Proposition 2.
//!
//! 1. `GenerateSlack` in `G[V^{sparse} ∪ V^{uneven}]`;
//! 2. success-guided `V_start` selection (App. D): a node that received
//!    little permanent slack but is adjacent to many nodes that *did*
//!    joins `V_start`; one with neither goes to the BAD set (swept by the
//!    cleanup, per the shattering framework);
//! 3. `SlackColor(V_start)` — their slack is *temporary*: the rest of the
//!    sparse nodes stay inactive, so `d̂(v)` only counts `V_start`;
//! 4. `SlackColor` on the remaining sparse/uneven nodes, whose slack is
//!    the permanent slack from step 1.

use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::passes::StatePass;
use crate::slackcolor::slack_color;
use crate::state::{AcdClass, NodeState};
use crate::trycolor::TryColorPass;
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};

/// 2-round exchange of "I received enough slack" flags (`V_start`
/// selection, App. D).
#[derive(Debug)]
struct GotSlackPass {
    st: NodeState,
    eps: f64,
    got: bool,
    done: bool,
}

impl GotSlackPass {
    fn new(st: NodeState, eps: f64) -> Self {
        GotSlackPass {
            st,
            eps,
            got: false,
            done: false,
        }
    }
}

impl Program for GotSlackPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        match ctx.round() {
            0 => {
                if self.st.active && self.st.uncolored() {
                    let d = self.st.active_uncolored_degree() as f64;
                    self.got = f64::from(self.st.slack_gain) >= self.eps * d;
                    ctx.broadcast(Wire::Flag {
                        tag: tags::ACTIVE,
                        on: self.got,
                    });
                }
            }
            _ => {
                self.st.flagged_neighbors = ctx
                    .inbox()
                    .iter()
                    .filter(|&(_, m)| matches!(m, Wire::Flag { on: true, .. }))
                    .count() as u32;
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for GotSlackPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

fn sparse_or_uneven(st: &NodeState) -> bool {
    matches!(st.class, AcdClass::Sparse | AcdClass::Uneven)
}

/// Minimum positive slack among active nodes (the globally known `s_min`).
pub(crate) fn min_active_slack(states: &[NodeState]) -> u64 {
    states
        .iter()
        .filter(|s| s.active)
        .map(|s| s.slack().max(1) as u64)
        .min()
        .unwrap_or(1)
}

/// Run the sparse/uneven path over the current phase's participants.
///
/// # Errors
///
/// Propagates engine errors.
pub fn color_sparse(
    driver: &mut Driver<'_>,
    mut states: Vec<NodeState>,
    profile: &ParamProfile,
    seed: u64,
) -> Result<Vec<NodeState>, PassFailure> {
    // Participants: sparse/uneven classified nodes of this phase.
    let phase_member: Vec<bool> = states
        .iter()
        .map(|st| sparse_or_uneven(st) && st.uncolored())
        .collect();
    states = driver.activate(states, |st| phase_member[st.id as usize])?;
    if Driver::active_count(&states) == 0 {
        return Ok(states);
    }

    // Step 1: GenerateSlack in the sparse/uneven subgraph.
    let pg = profile.pg;
    states = driver.run_pass("generate-slack", states, |st| {
        TryColorPass::generate_slack(st, pg)
    })?;

    // Step 2: V_start selection, success-guided.
    let eps = profile.eps_start;
    states = driver.run_pass("start-flags", states, |st| GotSlackPass::new(st, eps))?;
    let mut v_start = vec![false; states.len()];
    let mut bad = vec![false; states.len()];
    for st in &states {
        if st.active && st.uncolored() {
            let d = st.active_uncolored_degree() as f64;
            let got = f64::from(st.slack_gain) >= eps * d;
            if !got {
                if f64::from(st.flagged_neighbors) >= eps * d {
                    v_start[st.id as usize] = true;
                } else {
                    bad[st.id as usize] = true;
                }
            }
        }
    }

    // Step 3: SlackColor(V_start) with temporary slack.
    states = driver.activate(states, |st| v_start[st.id as usize] && st.uncolored())?;
    if Driver::active_count(&states) > 0 {
        let smin = min_active_slack(&states);
        states = slack_color(driver, states, profile, seed ^ 0x5a1, smin, "slack-start")?;
    }

    // Step 4: SlackColor on the rest (BAD nodes go to the cleanup under
    // the paper profile; the laptop profile lets them participate).
    let drop_bad = profile.bad_to_cleanup;
    states = driver.activate(states, |st| {
        phase_member[st.id as usize] && st.uncolored() && (!drop_bad || !bad[st.id as usize])
    })?;
    if Driver::active_count(&states) > 0 {
        let smin = min_active_slack(&states);
        states = slack_color(driver, states, profile, seed ^ 0x5a2, smin, "slack-sparse")?;
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acd::compute_acd;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    fn fresh_active(g: &Graph, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 24, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    #[test]
    fn sparse_path_colors_most_of_gnp() {
        let g = gen::gnp(150, 0.08, 6);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = compute_acd(&mut driver, fresh_active(&g, 0), &profile, 5).unwrap();
        let states = color_sparse(&mut driver, states, &profile, 11).unwrap();
        let uncolored = states
            .iter()
            .filter(|s| sparse_or_uneven(s) && s.uncolored())
            .count();
        let total = states.iter().filter(|s| sparse_or_uneven(s)).count();
        assert!(total > 100, "expected mostly sparse nodes, got {total}");
        assert!(
            uncolored * 4 <= total,
            "{uncolored}/{total} sparse nodes uncolored after Alg. 8"
        );
        // Validity.
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn dense_nodes_are_left_alone() {
        let g = gen::disjoint_cliques(2, 12);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(2));
        let states = compute_acd(&mut driver, fresh_active(&g, 0), &profile, 3).unwrap();
        let dense_before: Vec<NodeId> = states
            .iter()
            .filter(|s| s.class == AcdClass::Dense)
            .map(|s| s.id)
            .collect();
        assert!(!dense_before.is_empty());
        let states = color_sparse(&mut driver, states, &profile, 7).unwrap();
        for &v in &dense_before {
            assert!(
                states[v as usize].uncolored(),
                "dense node {v} colored by the sparse path"
            );
        }
    }
}
