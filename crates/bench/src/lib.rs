//! Experiment harness for the congest-coloring reproduction.
//!
//! The paper is a theory paper with no empirical evaluation section, so
//! every quantitative claim (Theorem 1, Corollary 1, Lemmas 1–6,
//! Theorems 2–3, the App. D constructions) is operationalized as an
//! experiment E1–E15 (see DESIGN.md §4), and the simulator itself is
//! benchmarked as experiment E0 (the message-plane microbench). Each
//! experiment function builds its workload, runs the relevant system, and
//! returns a printable [`Table`]; the `experiments` binary renders them
//! all (and mirrors them to JSON via `--json`), and `EXPERIMENTS.md`
//! records paper-claim vs measured shape.

#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_acd;
pub mod exp_coloring;
pub mod exp_estimate;
pub mod exp_hash;
pub mod exp_plane;
pub mod json;
pub mod table;
pub mod workloads;

pub use table::Table;
pub use workloads::Scale;

/// An experiment runner: builds its workload at the given [`Scale`] and
/// returns a printable [`Table`].
pub type Experiment = fn(Scale) -> Table;

/// All experiments in order, as `(id, runner)` pairs.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("E0", exp_plane::e0_engine_plane as Experiment),
        ("E1", exp_coloring::e1_rounds_vs_n),
        ("E2", exp_coloring::e2_high_degree),
        ("E3", exp_coloring::e3_d1c),
        ("E4", exp_estimate::e4_similarity),
        ("E5", exp_estimate::e5_joint_sample),
        ("E6", exp_estimate::e6_sparsity),
        ("E7", exp_estimate::e7_triangles),
        ("E8", exp_estimate::e8_four_cycles),
        ("E9", exp_hash::e9_multitrial),
        ("E10", exp_hash::e10_rep_goodness),
        ("E11", exp_coloring::e11_congestion),
        ("E12", exp_hash::e12_uniform),
        ("E13", exp_acd::e13_acd),
        ("E14", exp_acd::e14_slack),
        ("E15", exp_acd::e15_leader),
        ("E16a", exp_ablation::ablation_sigma),
        ("E16b", exp_ablation::ablation_scaleup),
        ("E16c", exp_ablation::ablation_dense_machinery),
    ]
}
