//! Experiment harness for the congest-coloring reproduction.
//!
//! The paper is a theory paper with no empirical evaluation section, so
//! every quantitative claim (Theorem 1, Corollary 1, Lemmas 1–6,
//! Theorems 2–3, the App. D constructions) is operationalized as a
//! runnable [`Scenario`]:
//!
//! * **Table experiments** (`E0`–`E16c`, modules `exp_*`) — one-off
//!   measurements rendered as a printable [`Table`];
//! * **Ladder sweeps** (`S1`–`S6`, [`scenario::sweep_scenarios`]) — a
//!   declarative graph-family × scale-ladder × algorithm × seed-set ×
//!   thread-count grid ([`sweep::SweepSpec`]) whose measurements are
//!   checked against the paper's asymptotic forms ([`claims`]) and
//!   rendered into the generated `EXPERIMENTS.md` ([`report`]).
//!
//! The `experiments` binary runs any subset by id ([`registry`] lists
//! everything), mirrors results to the `BENCH_*.json` format ([`json`]),
//! and regenerates `EXPERIMENTS.md` (`just experiments-md`).
//!
//! # Example
//!
//! ```
//! // Every catalog entry is runnable and carries its paper claim.
//! let reg = bench::registry();
//! assert!(reg.iter().any(|s| s.id() == "S1"));
//! for s in reg.iter().filter(|s| s.id() == "E16b") {
//!     let outcome = s.run(bench::Scale::Quick);
//!     assert!(!outcome.table.is_empty());
//! }
//! ```

#![warn(missing_docs)]

pub mod claims;
pub mod exp_ablation;
pub mod exp_acd;
pub mod exp_async;
pub mod exp_chaos;
pub mod exp_coloring;
pub mod exp_crash;
pub mod exp_estimate;
pub mod exp_hash;
pub mod exp_plane;
pub mod exp_server;
pub mod exp_service;
pub mod exp_session;
pub mod exp_sharding;
pub mod json;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod table;
pub mod workloads;

pub use scenario::{registry, Scenario, ScenarioOutcome};
pub use table::Table;
pub use workloads::Scale;

/// A table experiment runner: builds its workload at the given [`Scale`]
/// and returns a printable [`Table`].
pub type Experiment = fn(Scale) -> Table;
