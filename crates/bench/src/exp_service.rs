//! E0c — throughput-mode serving: the concurrent [`SolveServer`]
//! (driven closed-loop at one worker) vs fresh-session-per-solve.
//!
//! A production deployment of the solver fields a *stream* of solve
//! requests. E0c replays four request mixes through three service arms
//! and measures solves/sec plus per-request wall p50/p99:
//!
//! **Mixes** (all engine `threads = 1`):
//!
//! * `uniform-256` — the serving mix: a round-robin stream over a small
//!   catalog of n = 256 instances × solve seeds, so most requests repeat
//!   an earlier one (hot keys, the shape of high-traffic serving);
//! * `mixed-sizes` — the same stream shape over n ∈ {256, 1024, 4096}
//!   (quick scale: {256, 512, 1024});
//! * `repeat-topo-256` — one topology, every request a *distinct* solve
//!   seed: no request ever repeats, isolating what same-graph session
//!   rebinding buys;
//! * `fresh-topo-256` — every request a distinct topology: the worst
//!   case for reuse (full plane rebuild per request).
//!
//! **Arms**: `fresh` ([`ServiceConfig::fresh_per_solve`], the baseline —
//! every request pays a full engine build, exactly one-shot
//! [`d1lc::solve`]), `pooled` ([`ServiceConfig::pooled_only`], session
//! reuse without memoization), and `service` (the default: pooled
//! sessions + deterministic response memoization). Each arm runs one
//! server worker and submits closed-loop (submit, wait, repeat), so the
//! rows isolate the session/memo mechanisms from queueing effects — the
//! open-loop saturation picture is E0d (`exp_server`).
//!
//! The run **asserts** that every distinct request's response is
//! byte-identical to a one-shot [`d1lc::solve`] (coloring and per-pass
//! log), and that one probe request reproduces identically across all
//! three [`EngineMode`]s and threads {1, 2, 8} — so a throughput win can
//! never hide a correctness regression. `BENCH_5.json` at the repo root
//! is the committed full-scale snapshot; the acceptance row is the
//! `uniform-256` mix, `service` arm vs `fresh` arm.
//!
//! Honest mechanism split (why the rows look the way they do): engine
//! setup is a small fraction of a solve, so `pooled` beats `fresh` by a
//! constant only; the ≥2× on the repeat-heavy mixes comes from the memo
//! (solver determinism makes responses a pure function of the request,
//! so a hit returns the byte-identical result a recompute would).

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Scale};
use congest::SimConfig;
use d1lc::server::SolveServer;
use d1lc::service::{ServiceConfig, SolveRequest};
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use graphs::palette::ListAssignment;
use graphs::Graph;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registry entries for this module (E0c).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0c",
        "SolveServer closed-loop throughput vs fresh-session-per-solve",
        "The pooled, memoizing service serves the repeat-heavy uniform n=256 mix ≥2× faster \
         than fresh-session-per-solve at 1 engine thread, byte-identically",
        e0c_service_throughput,
    )]
}

/// Repetitions per (mix, arm); the minimum wall time is reported. Every
/// repetition starts a fresh server (cold pool, cold memo), so hits are
/// earned within the measured stream.
pub const REPS: usize = 3;

/// Drive a request stream closed-loop through a one-worker server:
/// submit, wait, repeat. Returns the responses plus per-request walls.
/// This is the PR 5 batched-serving shape expressed through the
/// concurrent API — E0d's open-loop baseline reuses it.
pub fn serve_stream(
    config: ServiceConfig,
    requests: &[SolveRequest],
) -> (Vec<Arc<SolveResult>>, Vec<Duration>, u64) {
    let server = SolveServer::start(config);
    let handle = server.handle();
    let mut results = Vec::with_capacity(requests.len());
    let mut walls = Vec::with_capacity(requests.len());
    for req in requests {
        let start = Instant::now();
        results.push(handle.solve(req.clone()).expect("serve"));
        walls.push(start.elapsed());
    }
    let hits = server.stats().memo_hits;
    (results, walls, hits)
}

/// Nearest-rank percentile over unsorted per-request walls.
pub fn percentile(walls: &[Duration], p: usize) -> Duration {
    if walls.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = walls.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// A shared instance: the unit the service recognizes by identity.
type Shared = (Arc<Graph>, Arc<ListAssignment>);

fn shared_instance(n: usize, topo_seed: u64) -> Shared {
    let inst = workloads::gnp_window(n, topo_seed);
    (Arc::new(inst.graph), Arc::new(inst.lists))
}

/// One request mix: a name and an ordered stream.
struct Mix {
    name: &'static str,
    requests: Vec<SolveRequest>,
    distinct: usize,
}

/// Round-robin `reps` passes over a catalog of `(instance, seed)` pairs.
fn stream(catalog: &[(Shared, u64)], reps: usize) -> Vec<SolveRequest> {
    let mut out = Vec::with_capacity(catalog.len() * reps);
    for _ in 0..reps {
        for ((graph, lists), seed) in catalog {
            out.push(SolveRequest::shared(
                graph,
                lists,
                SolveOptions::seeded(*seed),
            ));
        }
    }
    out
}

/// The `uniform-256` serving stream at the given scale — shared with
/// the criterion companion bench (`benches/solve_throughput.rs`) so the
/// two always measure the same stream.
pub fn uniform_requests(scale: Scale) -> Vec<SolveRequest> {
    uniform_mix(scale).requests
}

fn uniform_mix(scale: Scale) -> Mix {
    let (topos, seeds, reps) = match scale {
        Scale::Quick => (2u64, 2u64, 3usize),
        Scale::Full => (4, 2, 4),
    };
    let mut catalog = Vec::new();
    for t in 1..=topos {
        let inst = shared_instance(256, t);
        for s in 1..=seeds {
            catalog.push((inst.clone(), s));
        }
    }
    Mix {
        name: "uniform-256",
        distinct: catalog.len(),
        requests: stream(&catalog, reps),
    }
}

fn mixed_sizes_mix(scale: Scale) -> Mix {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[256, 512, 1024],
        Scale::Full => &[256, 1024, 4096],
    };
    let mut catalog = Vec::new();
    for &n in sizes {
        let inst = shared_instance(n, 1);
        for s in 1..=2u64 {
            catalog.push((inst.clone(), s));
        }
    }
    Mix {
        name: "mixed-sizes",
        distinct: catalog.len(),
        requests: stream(&catalog, 2),
    }
}

fn repeat_topo_mix(scale: Scale) -> Mix {
    let seeds = match scale {
        Scale::Quick => 8u64,
        Scale::Full => 16,
    };
    let inst = shared_instance(256, 1);
    let catalog: Vec<(Shared, u64)> = (1..=seeds).map(|s| (inst.clone(), s)).collect();
    Mix {
        name: "repeat-topo-256",
        distinct: catalog.len(),
        requests: stream(&catalog, 1),
    }
}

fn fresh_topo_mix(scale: Scale) -> Mix {
    let topos = match scale {
        Scale::Quick => 8u64,
        Scale::Full => 16,
    };
    let catalog: Vec<(Shared, u64)> = (1..=topos).map(|t| (shared_instance(256, t), 1)).collect();
    Mix {
        name: "fresh-topo-256",
        distinct: catalog.len(),
        requests: stream(&catalog, 1),
    }
}

/// The three service arms, in baseline-first order.
fn arms() -> [(&'static str, ServiceConfig); 3] {
    [
        ("fresh", ServiceConfig::fresh_per_solve()),
        ("pooled", ServiceConfig::pooled_only()),
        ("service", ServiceConfig::default()),
    ]
}

/// Every distinct request of the mix must reproduce the one-shot solve
/// byte for byte (coloring and per-pass log).
fn assert_mix_matches_one_shot(mix: &Mix, served: &[Arc<SolveResult>]) {
    let mut checked: Vec<(usize, usize, SolveOptions)> = Vec::new();
    for (req, result) in mix.requests.iter().zip(served) {
        let key = (
            Arc::as_ptr(&req.graph) as usize,
            Arc::as_ptr(&req.lists) as usize,
            req.options,
        );
        if checked.contains(&key) {
            continue;
        }
        checked.push(key);
        let direct = solve(&req.graph, &req.lists, req.options).expect("one-shot solve");
        assert_eq!(
            direct.coloring, result.coloring,
            "{}: service coloring diverged from one-shot",
            mix.name
        );
        assert_eq!(
            direct.log.passes(),
            result.log.passes(),
            "{}: service pass log diverged from one-shot",
            mix.name
        );
    }
    assert_eq!(checked.len(), mix.distinct, "mix distinct-count drifted");
}

/// One probe request must reproduce identically across every engine
/// generation and thread count (the legacy planes are slow, so the
/// reference arm runs at 1 thread only, as in E0b).
fn assert_probe_engine_identity() {
    let (graph, lists) = shared_instance(256, 1);
    let run = |engine: EngineMode, threads: usize| {
        let opts = SolveOptions {
            engine,
            sim: SimConfig {
                threads,
                ..SimConfig::default()
            },
            ..SolveOptions::seeded(1)
        };
        solve(&graph, &lists, opts).expect("probe solve")
    };
    let server = SolveServer::start(ServiceConfig::default());
    let req = SolveRequest::shared(&graph, &lists, SolveOptions::seeded(1));
    let served = server.handle().solve(req).expect("server probe");
    for engine in [
        EngineMode::Session,
        EngineMode::PerPass,
        EngineMode::Reference,
    ] {
        let threads: &[usize] = if engine == EngineMode::Reference {
            &[1]
        } else {
            &[1, 2, 8]
        };
        for &t in threads {
            let direct = run(engine, t);
            assert_eq!(
                served.coloring, direct.coloring,
                "probe coloring diverged: {engine:?} t={t}"
            );
            assert_eq!(
                served.log.passes(),
                direct.log.passes(),
                "probe pass log diverged: {engine:?} t={t}"
            );
        }
    }
}

/// E0c — service throughput over request mixes and arms.
pub fn e0c_service_throughput(scale: Scale) -> Table {
    assert_probe_engine_identity();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0c — SolveServer closed-loop throughput, gnp-window request streams, engine \
             threads=1, 1 worker (min of {REPS} cold-start reps, host cores={cores})",
        ),
        "Pooled sessions + deterministic memoization serve the repeat-heavy uniform n=256 \
         mix ≥2× over fresh-session-per-solve; distinct-request mixes show the honest \
         session-reuse constant",
    );
    t.columns([
        "mix",
        "arm",
        "requests",
        "distinct",
        "wall ms",
        "solves/s",
        "speedup",
        "p50 ms",
        "p99 ms",
        "memo hits",
    ]);
    let mixes = [
        uniform_mix(scale),
        mixed_sizes_mix(scale),
        repeat_topo_mix(scale),
        fresh_topo_mix(scale),
    ];
    for mix in &mixes {
        let mut baseline_s = f64::INFINITY;
        for (arm, config) in arms() {
            let mut best_wall = f64::INFINITY;
            let mut best = None;
            let mut hits = 0u64;
            for _ in 0..REPS {
                let start = Instant::now();
                let (results, walls, rep_hits) = serve_stream(config, &mix.requests);
                let wall = start.elapsed().as_secs_f64();
                if wall < best_wall {
                    best_wall = wall;
                    hits = rep_hits;
                    best = Some((results, walls));
                }
            }
            let (results, walls) = best.expect("at least one rep");
            if arm == "service" {
                assert_mix_matches_one_shot(mix, &results);
            }
            if arm == "fresh" {
                baseline_s = best_wall;
            }
            t.row([
                mix.name.to_string(),
                arm.to_string(),
                mix.requests.len().to_string(),
                mix.distinct.to_string(),
                f2(best_wall * 1e3),
                f2(mix.requests.len() as f64 / best_wall),
                f2(baseline_s / best_wall),
                f2(percentile(&walls, 50).as_secs_f64() * 1e3),
                f2(percentile(&walls, 99).as_secs_f64() * 1e3),
                hits.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mixes are well-formed: advertised distinct counts match the
    /// streams, and repeats really are identity-level repeats.
    #[test]
    fn mixes_are_well_formed() {
        for mix in [
            uniform_mix(Scale::Quick),
            mixed_sizes_mix(Scale::Quick),
            repeat_topo_mix(Scale::Quick),
            fresh_topo_mix(Scale::Quick),
        ] {
            let mut keys: Vec<(usize, u64)> = mix
                .requests
                .iter()
                .map(|r| (Arc::as_ptr(&r.graph) as usize, r.options.seed))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), mix.distinct, "{}", mix.name);
            assert!(mix.requests.len() >= mix.distinct);
        }
        assert!(
            uniform_mix(Scale::Quick).requests.len() > uniform_mix(Scale::Quick).distinct,
            "the serving mix must contain repeats"
        );
        assert_eq!(
            repeat_topo_mix(Scale::Quick).requests.len(),
            repeat_topo_mix(Scale::Quick).distinct,
            "repeat-topo must not duplicate requests"
        );
    }

    /// A miniature end-to-end run of the three arms on a tiny stream:
    /// identical responses, and the memo arm records hits.
    #[test]
    fn arms_agree_on_tiny_stream() {
        let inst = shared_instance(64, 2);
        let catalog: Vec<(Shared, u64)> = vec![(inst.clone(), 1), (inst, 2)];
        let requests = stream(&catalog, 2);
        let mut colorings = Vec::new();
        for (_, config) in arms() {
            let (results, _, _) = serve_stream(config, &requests);
            colorings.push(
                results
                    .iter()
                    .map(|r| r.coloring.clone())
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(colorings[0], colorings[1]);
        assert_eq!(colorings[0], colorings[2]);
    }
}
