//! The report emitter: renders committed sweep JSON into the generated
//! `EXPERIMENTS.md`.
//!
//! `EXPERIMENTS.md` is a *build artifact*: `just experiments-md` runs the
//! quick-scale sweep fresh, then renders that run plus the committed
//! full-scale snapshot (`BENCH_3.json`) through [`render_experiments_md`].
//! The renderer is a pure function of the two parsed documents and emits
//! **no wall-clock data for the quick section**, so regenerating is
//! byte-identical whenever the measured behaviour (rounds, bit loads,
//! verdicts — all seed-deterministic) is unchanged; CI regenerates it and
//! fails on drift.

use crate::json::Value;
use crate::table::f2;
use std::fmt::Write as _;

/// Marker comment the generated file starts with.
pub const GENERATED_HEADER: &str =
    "<!-- GENERATED FILE - do not edit. Regenerate with `just experiments-md`. -->";

/// Render `EXPERIMENTS.md` from the committed full-scale sweep document
/// and a freshly produced quick-scale document (both `bench-v2`).
///
/// # Errors
///
/// Rejects documents whose `scale` tags are not `Full` / `Quick`
/// respectively (swapped arguments) or that carry no sweeps.
pub fn render_experiments_md(full: &Value, quick: &Value) -> Result<String, String> {
    check_doc(full, "Full")?;
    check_doc(quick, "Quick")?;
    let mut out = String::new();
    let _ = writeln!(out, "{GENERATED_HEADER}");
    out.push_str(
        "\n# EXPERIMENTS — paper claims vs measured\n\
         \n\
         Scenario sweeps run the repo's solvers over geometric scale ladders and\n\
         check each measured curve against the asymptotic form the paper claims\n\
         for it (consistency fit, DESIGN.md §5: measured growth across the ladder\n\
         must stay within 1.5× the claimed form's growth; `pass`/`warn` verdicts\n\
         are recorded, never a hard failure). Rounds, bit loads, phase\n\
         breakdowns, and verdicts are seed-deterministic; wall-clock columns\n\
         appear only in the full-scale section and come from the committed\n\
         snapshot `BENCH_3.json`.\n\
         \n\
         | Section | Source | Regenerate |\n\
         |---|---|---|\n\
         | Quick-scale sweep | fresh run, CI drift-gated | `just experiments-md` |\n\
         | Full-scale sweep | committed `BENCH_3.json` | `just sweep-json && just experiments-md` |\n\
         \n\
         The one-off table experiments (E0–E16c) are catalogued in DESIGN.md §4\n\
         and printed by `cargo run --release -p bench --bin experiments`; this\n\
         file tracks the sweepable claims.\n\
         \n\
         The robustness experiments assert their claims inline rather than\n\
         fitting curves: E0e (fault chaos, `BENCH_7.json`), E0g (crash\n\
         chaos, `BENCH_9.json`), and E0h (async schedules, `BENCH_10.json`)\n\
         hard-fail unless every swept cell produces a\n\
         proper coloring with byte-identical transcripts across engine\n\
         generations, threads {1, 2, 8}, and shards {1, 2, 4, 8}. Degradation\n\
         under those plans is recorded as data, not treated as failure: crash\n\
         recovery at rates ≤ 0.01 finishes with modest round growth and\n\
         full propriety, while crash-stop plans eventually silence every node,\n\
         run passes to the round cap, and complete the coloring through the\n\
         quarantine-and-recolor repair path — the `quarantined` and\n\
         `repairs` columns in those snapshots say exactly when that happened.\n\
         E0h prices the \u{3b1}-synchronizer honestly: its pulses-per-round,\n\
         max-wait, and sync-bit columns are simulated synchronizer overhead\n\
         (the transcript itself never changes), and a schedule that out-waits\n\
         the watchdog must fail loud with `ScheduleStalled`, never silently\n\
         wrong.\n",
    );
    out.push_str("\n## Quick-scale sweep (CI drift gate)\n");
    render_sweep_sections(quick, false, &mut out)?;
    out.push_str("\n## Full-scale sweep (committed snapshot `BENCH_3.json`)\n");
    render_sweep_sections(full, true, &mut out)?;
    Ok(out)
}

fn check_doc(doc: &Value, scale: &str) -> Result<(), String> {
    let tag = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("document has no schema tag")?;
    if tag != crate::json::SCHEMA {
        return Err(format!("unsupported schema '{tag}' (want bench-v2)"));
    }
    let got = doc.get("scale").and_then(Value::as_str).unwrap_or("?");
    if got != scale {
        return Err(format!("expected a {scale}-scale document, got {got}"));
    }
    if doc.get("sweeps").is_none_or(|s| s.items().is_empty()) {
        return Err(format!("{scale}-scale document contains no sweeps"));
    }
    Ok(())
}

fn render_sweep_sections(doc: &Value, with_wall: bool, out: &mut String) -> Result<(), String> {
    for sweep in doc.get("sweeps").expect("checked").items() {
        let field = |key: &str| -> Result<&str, String> {
            sweep
                .get(key)
                .and_then(Value::as_str)
                .ok_or(format!("sweep missing string field '{key}'"))
        };
        let id = field("id")?;
        let _ = writeln!(out, "\n### {id} — {}\n", field("title")?);
        let _ = writeln!(out, "**Paper claim:** {}.\n", field("claim")?);
        let _ = writeln!(
            out,
            "**Setup:** family `{}`, algorithm `{}`, engine threads {}.\n",
            field("family")?,
            field("algorithm")?,
            sweep.get("threads").and_then(Value::as_u64).unwrap_or(1),
        );
        let _ = writeln!(
            out,
            "**Regenerate:** `cargo run --release -p bench --bin experiments -- --sweep{} {id} --json out.json`\n",
            if with_wall { "" } else { " --quick" },
        );
        render_cells_table(sweep, with_wall, out)?;
        out.push_str("\nClaim checks:\n\n");
        for check in sweep.get("checks").ok_or("sweep missing checks")?.items() {
            let get = |key: &str| check.get(key).and_then(Value::as_str).unwrap_or("?");
            let _ = writeln!(
                out,
                "- **{}** — `{}` consistent with `{}`: {}",
                get("verdict").to_uppercase(),
                get("metric"),
                get("form"),
                get("detail"),
            );
        }
        let notes = sweep.get("notes").and_then(Value::as_str).unwrap_or("");
        if !notes.is_empty() {
            let _ = writeln!(out, "\n**Reproduction notes:** {notes}");
        }
    }
    Ok(())
}

/// One aggregated row per ladder size: means across seeds for rounds,
/// maxima for bit loads.
fn render_cells_table(sweep: &Value, with_wall: bool, out: &mut String) -> Result<(), String> {
    let cells = sweep.get("cells").ok_or("sweep missing cells")?.items();
    if cells.is_empty() {
        return Err("sweep has no cells".to_string());
    }
    let num =
        |cell: &Value, key: &str| -> f64 { cell.get(key).and_then(Value::as_f64).unwrap_or(0.0) };
    out.push_str(if with_wall {
        "| n | seeds | rounds | rounds@B | B bits | max bits/edge | p99 bits/edge | wall s | phase rounds |\n\
         |--:|--:|--:|--:|--:|--:|--:|--:|:--|\n"
    } else {
        "| n | seeds | rounds | rounds@B | B bits | max bits/edge | p99 bits/edge | phase rounds |\n\
         |--:|--:|--:|--:|--:|--:|--:|:--|\n"
    });
    let mut sizes: Vec<u64> = cells
        .iter()
        .filter_map(|c| c.get("n").and_then(Value::as_u64))
        .collect();
    sizes.dedup();
    for n in sizes {
        let group: Vec<&Value> = cells
            .iter()
            .filter(|c| c.get("n").and_then(Value::as_u64) == Some(n))
            .collect();
        let seeds = group.len();
        let mean = |key: &str| -> f64 {
            group.iter().map(|c| num(c, key)).sum::<f64>() / seeds.max(1) as f64
        };
        let max =
            |key: &str| -> u64 { group.iter().map(|c| num(c, key) as u64).max().unwrap_or(0) };
        let _ = write!(
            out,
            "| {n} | {seeds} | {} | {} | {} | {} | {} |",
            f2(mean("rounds")),
            f2(mean("normalized_rounds")),
            max("bandwidth"),
            max("max_edge_bits"),
            max("p99_edge_bits"),
        );
        if with_wall {
            let _ = write!(out, " {} |", f2(mean("wall_seconds")));
        }
        let _ = writeln!(out, " {} |", phase_means(&group));
    }
    Ok(())
}

/// Mean rounds per phase across a size's seed group, first-seen order,
/// formatted `name:mean` with one decimal.
fn phase_means(group: &[&Value]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for cell in group {
        for phase in cell.get("phases").map(Value::items).unwrap_or(&[]) {
            let name = phase.items().first().and_then(Value::as_str).unwrap_or("?");
            let rounds = phase.items().get(1).and_then(Value::as_f64).unwrap_or(0.0);
            match order.iter().position(|o| o == name) {
                Some(i) => totals[i] += rounds,
                None => {
                    order.push(name.to_string());
                    totals.push(rounds);
                }
            }
        }
    }
    order
        .iter()
        .zip(&totals)
        .map(|(name, total)| format!("{name}:{:.1}", total / group.len().max(1) as f64))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::{ClaimCheck, Verdict};
    use crate::json::{parse, render, SweepRecord};
    use crate::sweep::{SweepCell, SweepOutcome};
    use crate::workloads::Scale;

    fn record(seed_noise: u64) -> SweepRecord {
        let cell = |n: usize, seed: u64, rounds: u64| SweepCell {
            n,
            seed,
            rounds,
            normalized_rounds: rounds + 10,
            bandwidth: 22,
            max_edge_bits: 44,
            p50_edge_bits: 18,
            p99_edge_bits: 40,
            wall_seconds: 0.25 + seed_noise as f64, // must NOT leak into quick renders
            phases: vec![("setup".into(), 2), ("fallback".into(), rounds - 2)],
        };
        SweepRecord {
            id: "S1".into(),
            title: "demo sweep".into(),
            claim: "Theorem 1".into(),
            notes: "clique size scales with n here".into(),
            family: "gnp-window".into(),
            algorithm: "d1lc-pipeline".into(),
            threads: 1,
            wall_seconds: 9.0,
            outcome: SweepOutcome {
                cells: vec![cell(256, 1, 100), cell(256, 2, 104), cell(512, 1, 106)],
                checks: vec![ClaimCheck {
                    metric: "rounds".into(),
                    form: "O(log^5 log n)".into(),
                    verdict: Verdict::Pass,
                    detail: "growth x1.04 vs allowed x1.61".into(),
                }],
            },
        }
    }

    fn docs(noise: u64) -> (Value, Value) {
        let full = parse(&render(Scale::Full, &[], &[record(noise)])).unwrap();
        let quick = parse(&render(Scale::Quick, &[], &[record(noise)])).unwrap();
        (full, quick)
    }

    #[test]
    fn renders_deterministically_and_hides_quick_wall_clock() {
        let (full_a, quick_a) = docs(0);
        let a = render_experiments_md(&full_a, &quick_a).expect("renders");
        let b = render_experiments_md(&full_a, &quick_a).expect("renders");
        assert_eq!(a, b, "emitter must be deterministic");
        // Different wall clocks, same measurements: the quick section must
        // be identical, so only the full section may differ.
        let (full_c, quick_c) = docs(7);
        let c = render_experiments_md(&full_a, &quick_c).expect("renders");
        assert_eq!(a, c, "quick wall clock leaked into the report");
        let d = render_experiments_md(&full_c, &quick_a).expect("renders");
        assert_ne!(a, d, "full section must carry wall clock");
    }

    #[test]
    fn report_structure_snapshot() {
        let (full, quick) = docs(0);
        let md = render_experiments_md(&full, &quick).expect("renders");
        assert!(md.starts_with(GENERATED_HEADER));
        for needle in [
            "# EXPERIMENTS — paper claims vs measured",
            "## Quick-scale sweep (CI drift gate)",
            "## Full-scale sweep (committed snapshot `BENCH_3.json`)",
            "### S1 — demo sweep",
            "**Paper claim:** Theorem 1.",
            "**Setup:** family `gnp-window`, algorithm `d1lc-pipeline`, engine threads 1.",
            "--sweep --quick S1",
            "| 256 | 2 | 102.00 | 112.00 | 22 | 44 | 40 | setup:2.0 fallback:100.0 |",
            "| 512 | 1 | 106.00 | 116.00 | 22 | 44 | 40 | 0.25 | setup:2.0 fallback:104.0 |",
            "- **PASS** — `rounds` consistent with `O(log^5 log n)`: growth x1.04",
            "**Reproduction notes:** clique size scales with n here",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn rejects_swapped_or_empty_documents() {
        let (full, quick) = docs(0);
        assert!(render_experiments_md(&quick, &full).is_err(), "swapped");
        let empty = parse(&render(Scale::Full, &[], &[])).unwrap();
        assert!(render_experiments_md(&empty, &quick).is_err(), "no sweeps");
        let v1 = parse(include_str!("../../../BENCH_2.json")).unwrap();
        assert!(render_experiments_md(&v1, &quick).is_err(), "v1 schema");
    }
}
