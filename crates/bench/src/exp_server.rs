//! E0d — open-loop serving: the concurrent [`SolveServer`] under fixed
//! arrival rates, measured to saturation.
//!
//! E0c answers "how fast can one caller drive the serving stack
//! closed-loop?". A production frontend faces the opposite shape: an
//! **open-loop** arrival process that does not slow down when the server
//! does. E0d replays the E0c `uniform-256` serving mix as a paced
//! arrival stream (fixed requests/sec, single submitter thread,
//! [`Admission::Reject`] so arrivals never stall) and reports, per
//! (worker count, offered rate) cell:
//!
//! * **sustained solves/sec** — completed responses over the span from
//!   first submission to last completion;
//! * **latency p50/p99/p999** — nearest-rank percentiles of
//!   submission→completion for completed requests (the resolution
//!   instant is recorded by the ticket itself, so a slow collector
//!   cannot inflate the tail);
//! * **rejected** — arrivals shed by admission control at queue depth 64.
//!
//! The **closed** row is the PR 5 serving shape — the same stream driven
//! submit-wait-submit at one worker (see
//! [`crate::exp_service::serve_stream`]) — and anchors the `×closed`
//! column: the acceptance claim is that at saturation (offered ≥ 2× the
//! closed-loop rate) the 1-worker server *sustains* at least the
//! closed-loop batched rate, i.e. the queue/ticket machinery costs
//! nothing against PR 5, while more workers raise the ceiling.
//!
//! Before any timing, the run **asserts** that every completed response
//! is byte-identical (coloring and per-pass log) to a one-shot
//! [`d1lc::solve`] across worker counts {1, 2, 8} with fully concurrent
//! submission — saturation can shed load, but never corrupt a response.
//! `BENCH_6.json` at the repo root is the committed full-scale snapshot.

use crate::exp_service::{serve_stream, uniform_requests};
use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::Scale;
use d1lc::server::SolveServer;
use d1lc::service::{Admission, ServiceConfig, SolveRequest};
use d1lc::{solve, SolveResult};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registry entries for this module (E0d).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0d",
        "SolveServer open-loop serving under fixed arrival rates",
        "At saturation (offered ≥ 2× the closed-loop rate) the 1-worker server sustains \
         ≥ the PR 5 closed-loop batched solves/sec on the same uniform-256 mix (×closed \
         ≥ 1), reporting latency p50/p99/p999; more workers raise the sustained ceiling; \
         every completed response is byte-identical to a one-shot solve",
        e0d_open_loop,
    )]
}

/// Worker counts every arm (and the identity assertion) covers.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Offered-rate multipliers over the measured closed-loop capacity.
const RATE_MULTIPLIERS: [f64; 3] = [1.0, 2.0, 4.0];

/// The paced arrival stream: the E0c uniform-256 serving mix cycled to
/// a fixed request count (quick stays CI-sized).
fn arrival_stream(scale: Scale) -> Vec<SolveRequest> {
    let base = uniform_requests(scale);
    let total = match scale {
        Scale::Quick => 32,
        Scale::Full => 192,
    };
    base.iter().cycle().take(total).cloned().collect()
}

/// Nearest-rank per-mille percentile (500 = p50, 999 = p999) over
/// unsorted latencies.
fn pct(lat: &[Duration], permille: usize) -> Duration {
    if lat.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = lat.to_vec();
    sorted.sort_unstable();
    let rank = (permille * sorted.len()).div_ceil(1000).max(1);
    sorted[rank - 1]
}

/// One open-loop cell's measurements.
struct OpenLoopOutcome {
    offered: f64,
    completed: usize,
    rejected: usize,
    sustained: f64,
    latencies: Vec<Duration>,
}

/// Pace `requests` through a server at a fixed arrival rate and collect
/// completion latencies. The submitter never blocks on a full queue
/// (Reject admission), so the offered rate is honored to sleep
/// granularity even past saturation.
fn open_loop(workers: usize, requests: &[SolveRequest], rate: f64) -> OpenLoopOutcome {
    let config = ServiceConfig::builder()
        .workers(workers)
        .queue(64)
        .admission(Admission::Reject)
        .build()
        .expect("valid open-loop config");
    let server = SolveServer::start(config);
    let handle = server.handle();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut submissions = Vec::with_capacity(requests.len());
    for (i, req) in requests.iter().enumerate() {
        let target = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if now < target {
            std::thread::sleep(target - now);
        }
        submissions.push((handle.submit(req.clone()), Instant::now()));
    }
    let mut latencies = Vec::new();
    let mut rejected = 0usize;
    let mut last_done = start;
    for (ticket, submitted_at) in &submissions {
        match ticket.wait() {
            Ok(_) => {
                let done = ticket
                    .completed_at()
                    .expect("resolved ticket has an instant");
                latencies.push(done.duration_since(*submitted_at));
                last_done = last_done.max(done);
            }
            Err(_) => rejected += 1,
        }
    }
    let span = last_done.duration_since(start).as_secs_f64();
    OpenLoopOutcome {
        offered: rate,
        completed: latencies.len(),
        rejected,
        sustained: if span > 0.0 {
            latencies.len() as f64 / span
        } else {
            0.0
        },
        latencies,
    }
}

/// Every completed response must be byte-identical to a one-shot solve,
/// across worker counts, under fully concurrent submission (all tickets
/// outstanding at once, Block admission so nothing is shed).
fn assert_identity_across_workers(scale: Scale) {
    let requests = uniform_requests(scale);
    // One one-shot reference per distinct request (identity-keyed).
    let mut directs: Vec<((usize, usize, u64), SolveResult)> = Vec::new();
    for req in &requests {
        let key = (
            Arc::as_ptr(&req.graph) as usize,
            Arc::as_ptr(&req.lists) as usize,
            req.options.seed,
        );
        if directs.iter().all(|(k, _)| *k != key) {
            let direct = solve(&req.graph, &req.lists, req.options).expect("one-shot");
            directs.push((key, direct));
        }
    }
    for workers in WORKER_COUNTS {
        let config = ServiceConfig::builder()
            .workers(workers)
            .build()
            .expect("valid identity config");
        let server = SolveServer::start(config);
        let handle = server.handle();
        let tickets: Vec<_> = requests
            .iter()
            .map(|req| handle.submit(req.clone()))
            .collect();
        for (req, ticket) in requests.iter().zip(&tickets) {
            let served = ticket.wait().expect("server response");
            let key = (
                Arc::as_ptr(&req.graph) as usize,
                Arc::as_ptr(&req.lists) as usize,
                req.options.seed,
            );
            let (_, direct) = directs
                .iter()
                .find(|(k, _)| *k == key)
                .expect("reference computed");
            assert_eq!(
                served.coloring, direct.coloring,
                "E0d: server coloring diverged from one-shot at workers={workers}"
            );
            assert_eq!(
                served.log.passes(),
                direct.log.passes(),
                "E0d: server pass log diverged from one-shot at workers={workers}"
            );
        }
    }
}

/// E0d — open-loop arrival sweep over worker counts.
pub fn e0d_open_loop(scale: Scale) -> Table {
    assert_identity_across_workers(scale);
    let requests = arrival_stream(scale);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // The closed-loop anchor: the same stream, PR 5 serving shape.
    let closed_start = Instant::now();
    let (_, closed_walls, _) = serve_stream(ServiceConfig::default(), &requests);
    let closed_wall = closed_start.elapsed().as_secs_f64();
    let closed_rate = requests.len() as f64 / closed_wall;
    let mut t = Table::new(
        format!(
            "E0d — SolveServer open-loop serving, uniform-256 mix × {} arrivals, queue \
             depth 64, reject admission, engine threads=1 (host cores={cores})",
            requests.len()
        ),
        "At offered ≥ 2× the closed-loop rate the 1-worker server sustains ≥ the closed \
         (PR 5 batched) solves/sec on the same mix; more workers raise the ceiling; \
         rejected arrivals are shed, never corrupted (byte-identity asserted across \
         workers 1/2/8 before timing)",
    );
    t.columns([
        "workers",
        "mode",
        "offered/s",
        "requests",
        "completed",
        "rejected",
        "sustained/s",
        "×closed",
        "p50 ms",
        "p99 ms",
        "p999 ms",
    ]);
    let ms = |d: Duration| f2(d.as_secs_f64() * 1e3);
    t.row([
        "1".into(),
        "closed".into(),
        "-".into(),
        requests.len().to_string(),
        requests.len().to_string(),
        "0".into(),
        f2(closed_rate),
        f2(1.0),
        ms(pct(&closed_walls, 500)),
        ms(pct(&closed_walls, 990)),
        ms(pct(&closed_walls, 999)),
    ]);
    for workers in WORKER_COUNTS {
        for mult in RATE_MULTIPLIERS {
            let out = open_loop(workers, &requests, closed_rate * mult);
            t.row([
                workers.to_string(),
                format!("open {mult}x"),
                f2(out.offered),
                requests.len().to_string(),
                out.completed.to_string(),
                out.rejected.to_string(),
                f2(out.sustained),
                f2(out.sustained / closed_rate),
                ms(pct(&out.latencies, 500)),
                ms(pct(&out.latencies, 990)),
                ms(pct(&out.latencies, 999)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The arrival stream is CI-sized at quick scale and cycles the E0c
    /// mix (so the two experiments measure the same requests).
    #[test]
    fn arrival_stream_cycles_the_uniform_mix() {
        let stream = arrival_stream(Scale::Quick);
        assert_eq!(stream.len(), 32);
        // Cycling means position i repeats position i mod |base| at the
        // identity level (same Arc, same options).
        let base_len = uniform_requests(Scale::Quick).len();
        for (i, req) in stream.iter().enumerate() {
            let src = &stream[i % base_len];
            assert!(Arc::ptr_eq(&req.graph, &src.graph));
            assert_eq!(req.options.seed, src.options.seed);
        }
    }

    /// Nearest-rank per-mille percentiles on a known distribution.
    #[test]
    fn pct_is_nearest_rank() {
        let lat: Vec<Duration> = (1..=1000).map(Duration::from_micros).collect();
        assert_eq!(pct(&lat, 500), Duration::from_micros(500));
        assert_eq!(pct(&lat, 990), Duration::from_micros(990));
        assert_eq!(pct(&lat, 999), Duration::from_micros(999));
        assert_eq!(pct(&[], 500), Duration::ZERO);
        let one = [Duration::from_millis(7)];
        assert_eq!(pct(&one, 999), Duration::from_millis(7));
    }

    /// A tiny open-loop run completes everything at a generous rate and
    /// measures a positive sustained throughput.
    #[test]
    fn open_loop_smoke() {
        let requests: Vec<SolveRequest> =
            uniform_requests(Scale::Quick).into_iter().take(6).collect();
        let out = open_loop(2, &requests, 1000.0);
        assert_eq!(out.completed + out.rejected, requests.len());
        assert!(out.completed > 0, "a 1000/s burst must complete something");
        assert!(out.sustained > 0.0);
        assert_eq!(out.latencies.len(), out.completed);
    }
}
