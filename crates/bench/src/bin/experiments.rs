//! Regenerate every experiment table (E1–E15 plus the E16a/b/c ablations;
//! see DESIGN.md §4).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # full scale
//! cargo run --release -p bench --bin experiments -- --quick # CI scale
//! cargo run --release -p bench --bin experiments -- E4 E9   # a subset
//! ```

use bench::{all_experiments, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let known: Vec<&str> = all_experiments().iter().map(|&(id, _)| id).collect();
    let unknown: Vec<&&String> = wanted
        .iter()
        .filter(|w| !known.contains(&w.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "error: unknown experiment id(s) {unknown:?}; known ids: {}",
            known.join(", ")
        );
        std::process::exit(2);
    }

    println!("# Experiment tables — Overcoming Congestion in Distributed Coloring (PODC 2022)");
    println!("# scale: {scale:?}\n");
    for (id, run) in all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == id) {
            continue;
        }
        let start = Instant::now();
        let table = run(scale);
        println!("{}", table.render());
        println!("({} rows in {:.1?})\n", table.len(), start.elapsed());
    }
}
