//! Run the experiment catalog (table experiments E0–E16c, ladder sweeps
//! S1–S6) and regenerate the generated artifacts.
//!
//! Usage:
//!
//! ```text
//! experiments                     # every scenario, full scale
//! experiments --quick             # CI scale
//! experiments E4 S1               # a subset, by id
//! experiments --sweep             # the sweep scenarios only (S1–S6)
//! experiments --sweep --json BENCH_3.json
//!                                 # sweep + mirror results to bench-v2 JSON
//! experiments --render-experiments EXPERIMENTS.md \
//!             --from-full BENCH_3.json --from-quick target/sweep-quick.json
//!                                 # pure render: sweep JSON -> EXPERIMENTS.md
//! ```
//!
//! The render mode runs no experiments: it parses the two sweep documents
//! and emits the markdown deterministically, so `EXPERIMENTS.md` is
//! byte-identical across regenerations of unchanged behaviour.

use bench::json::{parse, render, ExperimentResult, SweepRecord};
use bench::{registry, Scale};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut sweep_only = false;
    let mut render_out: Option<String> = None;
    let mut from_full: Option<String> = None;
    let mut from_quick: Option<String> = None;
    let mut wanted: Vec<&String> = Vec::new();
    let mut it = args.iter();
    let path_arg = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        match it.next() {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => fail(&format!("{flag} requires a file path")),
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--sweep" => sweep_only = true,
            "--json" => json_path = Some(path_arg(&mut it, "--json")),
            "--render-experiments" => {
                render_out = Some(path_arg(&mut it, "--render-experiments"));
            }
            "--from-full" => from_full = Some(path_arg(&mut it, "--from-full")),
            "--from-quick" => from_quick = Some(path_arg(&mut it, "--from-quick")),
            a if a.starts_with("--") => fail(&format!("unknown flag {a}")),
            _ => wanted.push(arg),
        }
    }

    if let Some(out) = render_out {
        let (Some(full), Some(quick)) = (from_full, from_quick) else {
            fail("--render-experiments requires --from-full and --from-quick");
        };
        if !wanted.is_empty() {
            fail("render mode takes no scenario ids");
        }
        render_markdown(&out, &full, &quick);
        return;
    }

    let reg = registry();
    let known: Vec<&str> = reg.iter().map(|s| s.id()).collect();
    let unknown: Vec<&&String> = wanted
        .iter()
        .filter(|w| !known.contains(&w.as_str()))
        .collect();
    if !unknown.is_empty() {
        fail(&format!(
            "unknown scenario id(s) {unknown:?}; known ids: {}",
            known.join(", ")
        ));
    }

    println!("# Experiment tables — Overcoming Congestion in Distributed Coloring (PODC 2022)");
    println!("# scale: {scale:?}\n");
    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut sweeps: Vec<SweepRecord> = Vec::new();
    for s in &reg {
        let selected = if wanted.is_empty() {
            !sweep_only || s.sweep_spec().is_some()
        } else {
            wanted.iter().any(|w| w.as_str() == s.id())
        };
        if !selected {
            continue;
        }
        let start = Instant::now();
        let outcome = s.run(scale);
        let wall = start.elapsed();
        println!("{}", outcome.table.render());
        println!("({} rows in {:.1?})\n", outcome.table.len(), wall);
        match outcome.sweep {
            Some(sweep) => sweeps.push(SweepRecord::from_scenario(
                s.as_ref(),
                wall.as_secs_f64(),
                sweep,
            )),
            _ => results.push(ExperimentResult {
                id: s.id().to_string(),
                table: outcome.table,
                wall_seconds: wall.as_secs_f64(),
            }),
        }
    }
    if let Some(path) = json_path {
        let doc = render(scale, &results, &sweeps);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "# wrote {} experiment(s) + {} sweep(s) to {path}",
            results.len(),
            sweeps.len()
        );
    }
}

/// Render mode: parse both sweep documents, emit EXPERIMENTS.md.
fn render_markdown(out_path: &str, full_path: &str, quick_path: &str) {
    let read_doc = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
        parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
    };
    let full = read_doc(full_path);
    let quick = read_doc(quick_path);
    let md = bench::report::render_experiments_md(&full, &quick).unwrap_or_else(|e| fail(&e));
    if let Err(e) = std::fs::write(out_path, &md) {
        fail(&format!("could not write {out_path}: {e}"));
    }
    println!("# wrote {out_path} from {full_path} + {quick_path}");
}
