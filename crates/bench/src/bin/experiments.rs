//! Regenerate every experiment table (E0 plus E1–E15 plus the E16a/b/c
//! ablations; see DESIGN.md §4).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments               # full scale
//! cargo run --release -p bench --bin experiments -- --quick    # CI scale
//! cargo run --release -p bench --bin experiments -- E4 E9      # a subset
//! cargo run --release -p bench --bin experiments -- --json out.json E0
//!                                # also mirror results to machine-readable JSON
//! ```

use bench::json::{render, ExperimentResult};
use bench::{all_experiments, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => match it.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path.clone()),
                _ => {
                    eprintln!("error: --json requires a file path");
                    std::process::exit(2);
                }
            },
            a if a.starts_with("--") => {
                eprintln!("error: unknown flag {a}");
                std::process::exit(2);
            }
            _ => wanted.push(arg),
        }
    }
    let known: Vec<&str> = all_experiments().iter().map(|&(id, _)| id).collect();
    let unknown: Vec<&&String> = wanted
        .iter()
        .filter(|w| !known.contains(&w.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "error: unknown experiment id(s) {unknown:?}; known ids: {}",
            known.join(", ")
        );
        std::process::exit(2);
    }

    println!("# Experiment tables — Overcoming Congestion in Distributed Coloring (PODC 2022)");
    println!("# scale: {scale:?}\n");
    let mut results: Vec<ExperimentResult> = Vec::new();
    for (id, run) in all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == id) {
            continue;
        }
        let start = Instant::now();
        let table = run(scale);
        let wall = start.elapsed();
        println!("{}", table.render());
        println!("({} rows in {:.1?})\n", table.len(), wall);
        results.push(ExperimentResult {
            id: id.to_string(),
            table,
            wall_seconds: wall.as_secs_f64(),
        });
    }
    if let Some(path) = json_path {
        let doc = render(scale, &results);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {} experiment(s) to {path}", results.len());
    }
}
