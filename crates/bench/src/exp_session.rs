//! E0b — persistent engine sessions vs the per-pass engine on **full
//! pipeline solves**.
//!
//! The HNT22 pipeline is many short passes over a shrinking frontier;
//! pre-session, every pass paid a fresh `O(n + m)` mailbox-plane build,
//! scratch allocation, and (pooled) thread spawn, and every round
//! stepped all `n` programs and swept all edge slots. E0b measures what
//! the session buys on the S1 workload family (`gnp-window`, the
//! shared-window G(n, 24/n) instances) by running [`d1lc::solve`]
//! through the three [`EngineMode`] paths:
//!
//! * `session` — one persistent [`congest::Session`] per solve (the
//!   default),
//! * `per-pass` — the preserved pre-session engine per pass
//!   (`congest::reference::run_mailbox_sweep`: plane rebuilt per pass,
//!   full step/route sweep every round),
//! * `reference` — the legacy sort-and-scatter plane per pass (1-thread
//!   row only; it exists to witness generational transcript identity).
//!
//! The run **asserts** that every arm produces the identical coloring
//! and the identical per-pass `PassLog` for every thread count — the
//! byte-for-byte transcript identity the session guarantees — so a perf
//! regression can never hide a correctness one. `BENCH_4.json` at the
//! repo root is the committed full-scale snapshot; the acceptance row is
//! the S1 family at the largest quick-scale `n` (1024), threads = 1.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Instance, Scale};
use congest::SimConfig;
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use std::time::Instant;

/// Registry entries for this module (E0b).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0b",
        "Engine-session vs per-pass pipeline solve",
        "A persistent session solves ≥ 1.5× faster than the per-pass engine at 1 thread",
        e0b_session_solve,
    )]
}

/// Repetitions per configuration; the minimum wall time is reported.
pub const REPS: usize = 3;

/// Solve seed (a member of the S1 sweep's seed set).
pub const SEED: u64 = 1;

/// One timed solve in the given engine mode; returns the best wall time
/// over [`REPS`] and the (deterministic) result.
pub fn timed_solve(inst: &Instance, engine: EngineMode, threads: usize) -> (f64, SolveResult) {
    let opts = SolveOptions {
        engine,
        sim: SimConfig {
            threads,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(SEED)
    };
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = solve(&inst.graph, &inst.lists, opts).expect("solve");
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(result);
    }
    (best, out.expect("at least one rep"))
}

/// E0b — session vs per-pass vs reference engines, S1 family.
pub fn e0b_session_solve(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![256, 1024],
        Scale::Full => vec![256, 1024, 4096],
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0b — engine sessions, d1lc solve on gnp-window (S1 family), seed {SEED} \
             (min of {REPS}, host cores={cores})",
        ),
        "Persistent session ≥1.5× the per-pass engine at 1 thread on a full pipeline solve",
    );
    t.columns([
        "n", "engine", "threads", "wall ms", "speedup", "rounds", "passes", "repairs",
    ]);
    for n in sizes {
        let inst = workloads::gnp_window(n, SEED);
        // Transcript witness: every arm must reproduce this exactly.
        let mut witness: Option<SolveResult> = None;
        let mut check = |label: &str, result: &SolveResult| match &witness {
            None => witness = Some(result.clone()),
            Some(w) => {
                assert_eq!(w.coloring, result.coloring, "coloring diverged: {label}");
                assert_eq!(
                    w.log.passes(),
                    result.log.passes(),
                    "pass log diverged: {label}"
                );
            }
        };
        for threads in [1usize, 2, 8] {
            let (per_pass_ms, per_pass) = timed_solve(&inst, EngineMode::PerPass, threads);
            check(&format!("per-pass t={threads} n={n}"), &per_pass);
            let (session_ms, session) = timed_solve(&inst, EngineMode::Session, threads);
            check(&format!("session t={threads} n={n}"), &session);
            let mut arms = vec![
                ("per-pass", per_pass_ms, per_pass),
                ("session", session_ms, session),
            ];
            if threads == 1 {
                // The legacy plane is slow; one generational-identity row.
                let (reference_ms, reference) = timed_solve(&inst, EngineMode::Reference, 1);
                check(&format!("reference t=1 n={n}"), &reference);
                arms.insert(0, ("reference", reference_ms, reference));
            }
            let baseline_ms = per_pass_ms;
            for (engine, wall, result) in arms {
                t.row([
                    n.to_string(),
                    engine.to_string(),
                    threads.to_string(),
                    f2(wall * 1e3),
                    f2(baseline_ms / wall),
                    result.rounds().to_string(),
                    result.log.passes().len().to_string(),
                    result.stats.repairs.to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three engine arms agree on a small instance (the full-size
    /// assertions live inside `e0b_session_solve`; this keeps a fast
    /// guard in the unit suite).
    #[test]
    fn engine_arms_agree_on_small_instance() {
        let inst = workloads::gnp_window(120, 3);
        let run = |engine| {
            let opts = SolveOptions {
                engine,
                ..SolveOptions::seeded(5)
            };
            solve(&inst.graph, &inst.lists, opts).expect("solve")
        };
        let a = run(EngineMode::Session);
        let b = run(EngineMode::PerPass);
        let c = run(EngineMode::Reference);
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.coloring, c.coloring);
        assert_eq!(a.log.passes(), b.log.passes());
        assert_eq!(a.log.passes(), c.log.passes());
    }
}
