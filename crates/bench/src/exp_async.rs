//! E0h — async-schedule sweep: full pipeline solves under hostile
//! schedules, run through the correctness-preserving α-synchronizer.
//!
//! PR 10 adds asynchronous execution ([`congest::SchedulePlan`]): a
//! deterministic, seeded schedule adversary perturbs *when* every node
//! pulses — per-message jitter, straggler nodes, anti-FIFO per-edge
//! delivery, burst stalls, skewed starts — while the α-synchronizer's
//! round-tag gating keeps *what* every node computes byte-identical to
//! the synchronous engine. The adversary's cost is real and measured:
//! extra pulses beyond one per round, empty-round sync traffic, and the
//! longest wait any node endured. A schedule that out-waits the
//! watchdog's patience wedges the run, which must fail loud with the
//! non-transient [`congest::SimError::ScheduleStalled`]. E0h sweeps
//! schedule plans (plus one composition with message loss) over the S1
//! workload family, crossed with session-engine shards {1, 2, 4, 8}
//! and threads {1, 2, 8}.
//!
//! The run **asserts**, before any timing:
//!
//! * every adversarial solve yields a **proper coloring** that is
//!   **byte-identical** — coloring, stats, and pass log with the
//!   synchronizer's own overhead counters masked — to the other engine
//!   modes and the full shards × threads grid;
//! * the overhead counters themselves are **geometry-invariant** across
//!   the session grid (the adversary is a pure function of seed and
//!   plan, not of the host);
//! * the `sync` arm ([`SchedulePlan::none`]) is byte-identical to a
//!   solve with a default `SimConfig` — the synchronizer costs nothing
//!   when it is off;
//! * the wedged arm (a certain 6-pulse burst against 2 pulses of
//!   patience) fails with `ScheduleStalled`, classified non-transient.
//!
//! `BENCH_10.json` at the repo root is the committed full-scale snapshot.
//!
//! **Honest caveat:** pulses and waits are *simulated* asynchrony on a
//! round-synchronous engine — wall-clock columns measure the simulator,
//! not a real asynchronous network.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Instance, Scale};
use congest::{FaultPlan, PassRecord, ScheduleCounters, SchedulePlan, SimConfig, SimError};
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use graphs::palette::check_coloring;
use std::time::Instant;

/// Registry entries for this module (E0h).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0h",
        "Async-schedule sweep: hostile schedules through the α-synchronizer",
        "Every adversarial solve is a proper coloring byte-identical to the synchronous \
         engine across engine modes, shards {1, 2, 4, 8}, and threads {1, 2, 8}; the \
         synchronizer's overhead (pulses/round, sync bits, waits, reorderings) is \
         geometry-invariant and honestly counted; SchedulePlan::none() reproduces the \
         synchronous solve bit for bit; a schedule that out-waits the watchdog fails \
         loud with the non-transient ScheduleStalled, never silently wrong",
        e0h_async,
    )]
}

/// Solve seed (a member of the S1 sweep's seed set, matching E0e/E0g).
pub const SEED: u64 = 1;

/// Per-pass round cap, matching E0g so the composition arm's losses are
/// bounded the same way (and the `sync` identity assertion compares
/// equal configs).
const MAX_ROUNDS: u64 = 256;

/// Session-engine ownership shard counts crossed with every plan.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Worker thread counts crossed with every plan.
const THREADS: [usize; 3] = [1, 2, 8];

/// The `(shards, threads)` cells that get a printed (timed) row; the
/// identity assertions still cover the full grid.
const TIMED: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 8), (8, 8)];

/// Watchdog patience for every completing arm: far above any wait the
/// swept adversaries can produce, so the watchdog is armed but quiet.
const PATIENCE: u32 = 64;

/// The swept schedule plans (each optionally composed with a fault
/// plan), mildest to harshest.
fn plans() -> Vec<(&'static str, SchedulePlan, FaultPlan)> {
    let p = |s: SchedulePlan| s.with_patience(PATIENCE);
    vec![
        ("sync", SchedulePlan::none(), FaultPlan::none()),
        (
            "jitter 0.2 max 3",
            p(SchedulePlan::jittery(0.2, 3)),
            FaultPlan::none(),
        ),
        (
            "jitter 0.5 max 4 spread 4",
            p(SchedulePlan::jittery(0.5, 4).with_start_spread(4)),
            FaultPlan::none(),
        ),
        (
            "straggler 0.05 lag 6",
            p(SchedulePlan::none().with_stragglers(0.05, 6)),
            FaultPlan::none(),
        ),
        (
            "anti-FIFO 0.3 win 4",
            p(SchedulePlan::none().with_antififo(0.3, 4)),
            FaultPlan::none(),
        ),
        (
            "burst 0.05 max 4",
            p(SchedulePlan::none().with_bursts(0.05, 4)),
            FaultPlan::none(),
        ),
        (
            "jitter 0.3 max 3 + drop 0.1",
            p(SchedulePlan::jittery(0.3, 3)),
            FaultPlan::lossy(0.1).with_delay(0.2, 3),
        ),
    ]
}

/// The wedged arm: a certain 6-pulse burst against 2 pulses of patience
/// stalls every run of the plan, deterministically.
fn wedged_plan() -> SchedulePlan {
    SchedulePlan::none().with_bursts(1.0, 6).with_patience(2)
}

/// One timed solve under `(sched, fault)`; returns wall seconds and the
/// (deterministic) result.
fn async_solve(
    inst: &Instance,
    engine: EngineMode,
    threads: usize,
    shards: usize,
    sched: SchedulePlan,
    fault: FaultPlan,
) -> (f64, Result<SolveResult, SimError>) {
    let opts = SolveOptions {
        engine,
        sim: SimConfig {
            threads,
            shards,
            fault,
            sched,
            max_rounds: MAX_ROUNDS,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(SEED)
    };
    let start = Instant::now();
    let result = solve(&inst.graph, &inst.lists, opts);
    (start.elapsed().as_secs_f64(), result)
}

/// The pass log with the synchronizer's own overhead counters masked —
/// what must agree byte for byte with engines that never ran the
/// synchronizer (the legacy per-pass sweep and reference plane both
/// ignore the sched knob).
fn masked_passes(r: &SolveResult) -> Vec<PassRecord> {
    r.log
        .passes()
        .iter()
        .cloned()
        .map(|mut p| {
            p.report.sched = ScheduleCounters::default();
            p
        })
        .collect()
}

/// E0h — schedule-adversary × shards × threads sweep with cross-engine
/// identity witness and a fail-loud wedged arm.
pub fn e0h_async(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![128, 256],
        Scale::Full => vec![256, 1024],
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0h — async-schedule sweep, d1lc solve on gnp-window (S1 family) through the \
             α-synchronizer, seed {SEED}, max {MAX_ROUNDS} rounds/pass, patience {PATIENCE} \
             (host cores={cores})",
        ),
        "Hostile schedules change when, never what: colorings and transcripts match the \
         synchronous engine byte for byte, the synchronizer's overhead is counted \
         honestly, and a wedged schedule fails loud",
    );
    t.columns([
        "n",
        "plan",
        "shards",
        "threads",
        "wall ms",
        "rounds",
        "pulses",
        "pulses/round",
        "sync bits/round",
        "max wait",
        "reordered",
    ]);
    for n in sizes {
        let inst = workloads::gnp_window(n, SEED);
        for (label, sched, fault) in plans() {
            // Witness arm: the session engine at 1 thread, 1 shard.
            let (_, witness) = async_solve(&inst, EngineMode::Session, 1, 1, sched, fault);
            let witness = witness.expect("patient async solve completes");
            assert_eq!(
                check_coloring(&inst.graph, &inst.lists, &witness.coloring),
                Ok(()),
                "E0h: improper coloring under plan '{label}' at n={n}"
            );
            if !sched.is_active() && !fault.is_active() {
                // The synchronizer off must be invisible: bit for bit
                // the synchronous engine (same config minus the plan
                // fields).
                let baseline = {
                    let opts = SolveOptions {
                        sim: SimConfig {
                            shards: 1,
                            max_rounds: MAX_ROUNDS,
                            ..SimConfig::default()
                        },
                        ..SolveOptions::seeded(SEED)
                    };
                    solve(&inst.graph, &inst.lists, opts).expect("synchronous solve")
                };
                assert_eq!(
                    witness.coloring, baseline.coloring,
                    "E0h: SchedulePlan::none() changed the coloring at n={n}"
                );
                assert_eq!(
                    witness.log.passes(),
                    baseline.log.passes(),
                    "E0h: SchedulePlan::none() changed the pass log at n={n}"
                );
            }
            let check = |arm: &str, result: &SolveResult| {
                assert_eq!(
                    witness.coloring, result.coloring,
                    "E0h: coloring diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    masked_passes(&witness),
                    masked_passes(result),
                    "E0h: pass log diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    witness.stats, result.stats,
                    "E0h: stats diverged ({arm}, plan '{label}', n={n})"
                );
            };
            // Generational identity: the legacy engines (per-pass
            // mailbox sweep and reference plane) ignore the sched knob
            // entirely, so their masked-log agreement *is* the
            // transcript-preservation claim.
            let (_, per_pass) = async_solve(&inst, EngineMode::PerPass, 1, 1, sched, fault);
            check(
                "per-pass t=1",
                &per_pass.expect("per-pass async solve completes"),
            );
            let (_, reference) = async_solve(&inst, EngineMode::Reference, 1, 1, sched, fault);
            check(
                "reference t=1",
                &reference.expect("reference solve completes"),
            );
            // The full shards × threads grid is asserted — including
            // geometry-invariance of the overhead counters; the TIMED
            // diagonal gets printed rows.
            for shards in SHARDS {
                for threads in THREADS {
                    let (wall, result) =
                        async_solve(&inst, EngineMode::Session, threads, shards, sched, fault);
                    let result = result.expect("sharded async solve completes");
                    check(&format!("session s={shards} t={threads}"), &result);
                    assert_eq!(
                        witness.log.passes(),
                        result.log.passes(),
                        "E0h: sched counters not geometry-invariant \
                         (s={shards} t={threads}, plan '{label}', n={n})"
                    );
                    if !TIMED.contains(&(shards, threads)) {
                        continue;
                    }
                    let rounds = result.rounds().max(1);
                    let overhead = result.log.sched_totals();
                    let (per_round, bits_per_round) = if overhead.any() {
                        (
                            f2(overhead.pulses as f64 / rounds as f64),
                            f2(overhead.sync_bits as f64 / rounds as f64),
                        )
                    } else {
                        ("-".into(), "-".into())
                    };
                    t.row([
                        n.to_string(),
                        label.into(),
                        shards.to_string(),
                        threads.to_string(),
                        f2(wall * 1e3),
                        result.rounds().to_string(),
                        overhead.pulses.to_string(),
                        per_round,
                        bits_per_round,
                        overhead.max_wait.to_string(),
                        overhead.reordered.to_string(),
                    ]);
                }
            }
        }
        // The wedged arm: fail loud, never silently wrong, and never a
        // retry candidate — the schedule is a pure function of the seed
        // and the plan.
        let (wall, stalled) = async_solve(
            &inst,
            EngineMode::Session,
            1,
            1,
            wedged_plan(),
            FaultPlan::none(),
        );
        let err = stalled.expect_err("a 6-pulse burst must trip a 2-pulse watchdog");
        assert!(
            matches!(err, SimError::ScheduleStalled { .. }),
            "E0h: expected ScheduleStalled at n={n}, got {err:?}"
        );
        assert!(
            !err.is_transient(),
            "E0h: a wedged schedule must not be classified transient"
        );
        let (round, waited) = match err {
            SimError::ScheduleStalled { round, waited, .. } => (round, waited),
            _ => unreachable!(),
        };
        t.row([
            n.to_string(),
            "burst 1.0 max 6 patience 2 (wedged)".into(),
            "1".to_string(),
            "1".to_string(),
            f2(wall * 1e3),
            format!("stalled@{round}"),
            "-".into(),
            "-".into(),
            "-".into(),
            waited.to_string(),
            "-".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The swept plans cover the advertised axes and stay distinct.
    #[test]
    fn plans_cover_the_axes() {
        let ps = plans();
        assert_eq!(ps[0].1, SchedulePlan::none());
        assert!(!ps[0].1.is_active());
        assert!(ps[1..].iter().all(|(_, s, _)| s.is_active()));
        assert!(
            ps[1..].iter().all(|(_, s, _)| s.patience == PATIENCE),
            "every completing arm arms the watchdog"
        );
        for window in ps.windows(2) {
            assert_ne!(
                (window[0].1, window[0].2),
                (window[1].1, window[1].2),
                "duplicate plan in the sweep"
            );
        }
        assert!(ps.iter().any(|(_, s, _)| s.jitter_q > 0), "no jitter arm");
        assert!(
            ps.iter().any(|(_, s, _)| s.start_spread > 0),
            "no skewed-start arm"
        );
        assert!(
            ps.iter().any(|(_, s, _)| s.straggler_q > 0),
            "no straggler arm"
        );
        assert!(
            ps.iter().any(|(_, s, _)| s.antififo_q > 0),
            "no anti-FIFO arm"
        );
        assert!(ps.iter().any(|(_, s, _)| s.burst_q > 0), "no burst arm");
        assert!(
            ps.iter().any(|(_, s, f)| s.is_active() && f.is_active()),
            "no schedule × message-fault composition arm"
        );
        for (shards, threads) in TIMED {
            assert!(SHARDS.contains(&shards) && THREADS.contains(&threads));
        }
    }

    /// A tiny async cell runs end to end: proper coloring, overhead
    /// actually counted, and the session/per-pass arms agree across a
    /// shard split, sched counters included.
    #[test]
    fn async_cell_smoke() {
        let inst = workloads::gnp_window(96, SEED);
        let sched = SchedulePlan::jittery(0.4, 3)
            .with_start_spread(2)
            .with_patience(PATIENCE);
        let (_, session) = async_solve(&inst, EngineMode::Session, 2, 4, sched, FaultPlan::none());
        let session = session.expect("solve");
        assert_eq!(
            check_coloring(&inst.graph, &inst.lists, &session.coloring),
            Ok(())
        );
        let overhead = session.log.sched_totals();
        assert!(overhead.pulses > 0, "no pulses recorded");
        assert!(overhead.sync_bits > 0, "no sync traffic recorded");
        assert!(
            overhead.pulses > session.rounds(),
            "an active adversary must cost extra pulses"
        );
        let (_, per_pass) = async_solve(&inst, EngineMode::PerPass, 1, 1, sched, FaultPlan::none());
        let per_pass = per_pass.expect("solve");
        assert_eq!(session.coloring, per_pass.coloring);
        assert_eq!(masked_passes(&session), masked_passes(&per_pass));
        assert!(
            !per_pass.log.sched_totals().any(),
            "the legacy per-pass engine must ignore the sched knob"
        );
    }

    /// The wedged plan stalls loud — and deterministically, so it must
    /// not be classified as worth retrying.
    #[test]
    fn wedged_plan_stalls_loud() {
        let inst = workloads::gnp_window(64, SEED);
        let (_, r) = async_solve(
            &inst,
            EngineMode::Session,
            1,
            1,
            wedged_plan(),
            FaultPlan::none(),
        );
        let err = r.expect_err("must stall");
        assert!(matches!(err, SimError::ScheduleStalled { .. }));
        assert!(!err.is_transient());
        let (_, again) = async_solve(
            &inst,
            EngineMode::Session,
            8,
            8,
            wedged_plan(),
            FaultPlan::none(),
        );
        assert_eq!(
            format!("{err}"),
            format!("{}", again.expect_err("must stall at any geometry")),
            "the stall is not geometry-deterministic"
        );
    }
}
