//! The scenario registry: one declarative catalog unifying the legacy
//! table experiments (E0–E16) and the ladder sweeps (S1–S6).
//!
//! A [`Scenario`] is anything the `experiments` binary can run by id.
//! Legacy experiments wrap a `fn(Scale) -> Table` ([`TableScenario`]);
//! sweep scenarios ([`SweepScenario`]) additionally produce structured
//! [`SweepOutcome`] measurements (graph family × scale ladder × algorithm
//! × seed set × thread count) that feed the claim checker and the
//! generated `EXPERIMENTS.md`. [`registry`] lists everything in catalog
//! order.

use crate::claims::Form;
use crate::sweep::{run_sweep, Algorithm, Metric, SweepOutcome, SweepSpec};
use crate::table::{f2, mean, Table};
use crate::workloads::{self, Instance, Scale};
use crate::{
    exp_ablation, exp_acd, exp_async, exp_chaos, exp_coloring, exp_crash, exp_estimate, exp_hash,
    exp_plane, exp_server, exp_service, exp_session, exp_sharding, Experiment,
};

/// What running a scenario produces: always a printable table; for sweep
/// scenarios, also the structured measurements behind it.
pub struct ScenarioOutcome {
    /// Human-readable result (what the binary prints).
    pub table: Table,
    /// Structured ladder measurements + claim verdicts (sweeps only).
    pub sweep: Option<SweepOutcome>,
}

/// One runnable entry of the experiment catalog.
pub trait Scenario {
    /// Catalog id (`"E4"`, `"S1"`, …) — what the binary selects by.
    fn id(&self) -> &'static str;
    /// Short title for listings.
    fn title(&self) -> &'static str;
    /// The paper claim the scenario exercises.
    fn claim(&self) -> &'static str;
    /// Run at the given scale.
    fn run(&self, scale: Scale) -> ScenarioOutcome;
    /// The sweep specification, when this scenario is a ladder sweep.
    fn sweep_spec(&self) -> Option<&SweepSpec> {
        None
    }
    /// Reproduction notes: interpretation that belongs next to the raw
    /// verdicts (workload caveats, expected warns, scaling artifacts).
    fn notes(&self) -> &'static str {
        ""
    }
}

/// Adapter: a legacy table experiment as a [`Scenario`].
pub struct TableScenario {
    id: &'static str,
    title: &'static str,
    claim: &'static str,
    runner: Experiment,
}

impl TableScenario {
    /// A boxed registry entry for a legacy experiment function.
    pub fn boxed(
        id: &'static str,
        title: &'static str,
        claim: &'static str,
        runner: Experiment,
    ) -> Box<dyn Scenario> {
        Box::new(TableScenario {
            id,
            title,
            claim,
            runner,
        })
    }
}

impl Scenario for TableScenario {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn claim(&self) -> &'static str {
        self.claim
    }
    fn run(&self, scale: Scale) -> ScenarioOutcome {
        ScenarioOutcome {
            table: (self.runner)(scale),
            sweep: None,
        }
    }
}

/// A declarative ladder sweep as a [`Scenario`].
pub struct SweepScenario {
    id: &'static str,
    title: &'static str,
    claim: &'static str,
    notes: &'static str,
    spec: SweepSpec,
}

impl Scenario for SweepScenario {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn claim(&self) -> &'static str {
        self.claim
    }
    fn run(&self, scale: Scale) -> ScenarioOutcome {
        let outcome = run_sweep(&self.spec, scale);
        let table = sweep_table(self, &outcome);
        ScenarioOutcome {
            table,
            sweep: Some(outcome),
        }
    }
    fn sweep_spec(&self) -> Option<&SweepSpec> {
        Some(&self.spec)
    }
    fn notes(&self) -> &'static str {
        self.notes
    }
}

/// Render a sweep outcome as a printable table (per-`n` aggregates across
/// seeds, plus one row per claim verdict in the caption position).
fn sweep_table(s: &SweepScenario, out: &SweepOutcome) -> Table {
    let mut t = Table::new(
        format!("{} — {} ({})", s.id, s.title, s.spec.algorithm.label()),
        s.claim,
    );
    t.columns([
        "n",
        "seeds",
        "rounds",
        "rounds@B",
        "max bits/edge",
        "p99 bits/edge",
        "wall s",
        "phases",
    ]);
    let mut sizes: Vec<usize> = out.cells.iter().map(|c| c.n).collect();
    sizes.dedup();
    for n in sizes {
        let group: Vec<_> = out.cells.iter().filter(|c| c.n == n).collect();
        let rounds: Vec<f64> = group.iter().map(|c| c.rounds as f64).collect();
        let norm: Vec<f64> = group.iter().map(|c| c.normalized_rounds as f64).collect();
        let maxb = group.iter().map(|c| c.max_edge_bits).max().unwrap_or(0);
        let p99 = group.iter().map(|c| c.p99_edge_bits).max().unwrap_or(0);
        let wall: Vec<f64> = group.iter().map(|c| c.wall_seconds).collect();
        t.row([
            n.to_string(),
            group.len().to_string(),
            f2(mean(&rounds)),
            f2(mean(&norm)),
            maxb.to_string(),
            p99.to_string(),
            f2(mean(&wall)),
            phase_means(&group),
        ]);
    }
    for check in &out.checks {
        t.row([
            format!("[{}]", check.verdict.tag()),
            String::new(),
            check.metric.clone(),
            check.form.clone(),
            String::new(),
            String::new(),
            String::new(),
            check.detail.clone(),
        ]);
    }
    t
}

/// Compact `name:rounds` summary of a phase breakdown.
pub fn phase_summary(phases: &[(String, u64)]) -> String {
    phases
        .iter()
        .map(|(name, rounds)| format!("{name}:{rounds}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Mean rounds per phase across a size's seed group (first-seen order,
/// one decimal, absent phases counting as 0) — the same aggregation the
/// EXPERIMENTS.md renderer uses, so the stdout table and the report
/// never disagree about where the rounds went.
fn phase_means(group: &[&crate::sweep::SweepCell]) -> String {
    let mut order: Vec<&str> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for cell in group {
        for (name, rounds) in &cell.phases {
            match order.iter().position(|o| o == name) {
                Some(i) => totals[i] += *rounds as f64,
                None => {
                    order.push(name);
                    totals.push(*rounds as f64);
                }
            }
        }
    }
    order
        .iter()
        .zip(&totals)
        .map(|(name, total)| format!("{name}:{:.1}", total / group.len().max(1) as f64))
        .collect::<Vec<_>>()
        .join(" ")
}

/// High-min-degree family at the laptop-scaled Theorem 1(b) threshold.
///
/// `dmin = 48` keeps the realized Δ (≈ 100) inside one rung of the
/// pipeline's degree ladder across the whole sweep; the regime claim is
/// about holding the degree structure fixed while `n` grows, so the
/// family must not drift across a phase boundary as a side effect of
/// sampling noise.
fn high_degree_auto(n: usize, seed: u64) -> Instance {
    workloads::high_degree(n, 48.min(n / 4), seed)
}

/// The sweep scenarios S1–S6.
pub fn sweep_scenarios() -> Vec<Box<dyn Scenario>> {
    fn main_ladder(scale: Scale) -> Vec<usize> {
        match scale {
            Scale::Quick => graphs::gen::pow2_ladder(8, 10),
            Scale::Full => graphs::gen::pow2_ladder(10, 14),
        }
    }
    // Families whose per-instance cost is superlinear in n (blends grow
    // clique size ~n/40, so edges grow ~n²/120; high-degree instances
    // carry ~90n edges) climb a shorter ladder.
    fn blend_ladder(scale: Scale) -> Vec<usize> {
        match scale {
            Scale::Quick => graphs::gen::pow2_ladder(8, 10),
            Scale::Full => graphs::gen::pow2_ladder(10, 13),
        }
    }
    fn dense_ladder(scale: Scale) -> Vec<usize> {
        match scale {
            Scale::Quick => graphs::gen::pow2_ladder(8, 9),
            Scale::Full => graphs::gen::pow2_ladder(10, 12),
        }
    }
    // The constant-average-degree D1C family starts its full ladder one
    // octave higher: below n = 2^11 its Δ sits under the laptop-scaled
    // phase floor and no degree-range phase runs at all, so a ladder
    // starting at 2^10 measures the cold-start staircase (0 → 2 active
    // ranges), not the warmed-up pipeline the Corollary 1 bound is
    // about. The instances are light, so the ladder tops out at 2^15.
    fn d1c_ladder(scale: Scale) -> Vec<usize> {
        match scale {
            Scale::Quick => graphs::gen::pow2_ladder(8, 10),
            Scale::Full => graphs::gen::pow2_ladder(11, 15),
        }
    }
    fn seed_set(scale: Scale) -> Vec<u64> {
        match scale {
            Scale::Quick => vec![1, 2],
            Scale::Full => vec![1, 2, 3],
        }
    }
    const PIPELINE_CLAIMS: &[(Metric, Form)] = &[
        (Metric::Rounds, Form::PolyLogLog(5)),
        (Metric::P99EdgeBits, Form::LogN),
    ];
    const D1C_CLAIMS: &[(Metric, Form)] = &[
        (Metric::Rounds, Form::PolyLogLog(3)),
        (Metric::P99EdgeBits, Form::LogN),
    ];
    const BASELINE_CLAIMS: &[(Metric, Form)] = &[
        (Metric::Rounds, Form::LogN),
        (Metric::P99EdgeBits, Form::LogN),
    ];
    const HIGHDEG_CLAIMS: &[(Metric, Form)] = &[
        (Metric::Rounds, Form::LogStar),
        (Metric::P99EdgeBits, Form::LogN),
    ];
    vec![
        Box::new(SweepScenario {
            id: "S1",
            title: "D1LC pipeline on G(n,p), shared-window lists",
            claim: "Theorem 1: D1LC in O(log^5 log n) rounds with O(log n)-bit messages",
            notes: "Rounds are dominated by the fixed pass structure (one degree-range phase plus fallback), essentially flat across the ladder — the poly(log log n) bound with small constants.",
            spec: SweepSpec {
                family: "gnp-window",
                make: workloads::gnp_window,
                algorithm: Algorithm::Pipeline,
                ladder: main_ladder,
                seeds: seed_set,
                threads: 1,
                claims: PIPELINE_CLAIMS,
            },
        }),
        Box::new(SweepScenario {
            id: "S2",
            title: "D1LC pipeline on clique blends, shared-window lists",
            claim: "Theorem 1 on the dense-path regime (almost-cliques active)",
            notes: "The full-scale p99-edge-bits warn is a real finding: this family grows its planted cliques with n (size ~n/40), and the hub-routed dense-path aggregation's per-edge load grows with clique size in tracking mode. The overflow is priced into rounds@B (~1.35x raw rounds), which stays poly(log log n)-flat.",
            spec: SweepSpec {
                family: "blend-window",
                make: workloads::blend_window,
                algorithm: Algorithm::Pipeline,
                ladder: blend_ladder,
                seeds: seed_set,
                threads: 2,
                claims: PIPELINE_CLAIMS,
            },
        }),
        Box::new(SweepScenario {
            id: "S3",
            title: "D1C (lists = [d_v+1]) on sparse G(n,p)",
            claim: "Corollary 1: D1C in O(log^3 log n) rounds",
            notes: "The full ladder starts at 2^11: below that, this constant-average-degree family sits under the laptop-scaled phase floor and no degree-range phase runs, so a lower start would measure the cold-start staircase instead of the warmed-up pipeline.",
            spec: SweepSpec {
                family: "gnp-d1c",
                make: workloads::gnp_d1c,
                algorithm: Algorithm::Pipeline,
                ladder: d1c_ladder,
                seeds: seed_set,
                threads: 1,
                claims: D1C_CLAIMS,
            },
        }),
        Box::new(SweepScenario {
            id: "S4",
            title: "Random-trial baseline on G(n,p), shared-window lists",
            claim: "The classical baseline runs in O(log n) rounds — the bound the paper beats",
            notes: "The comparison point: flat O(log n)-bit messages, rounds growing with log n. The pipeline beats it asymptotically, not in absolute rounds at laptop scale (its constants buy the asymptotics).",
            spec: SweepSpec {
                family: "gnp-window",
                make: workloads::gnp_window,
                algorithm: Algorithm::Baseline,
                ladder: main_ladder,
                seeds: seed_set,
                threads: 1,
                claims: BASELINE_CLAIMS,
            },
        }),
        Box::new(SweepScenario {
            id: "S5",
            title: "High-min-degree G(n,p) (Theorem 1(b) regime)",
            claim: "Min degree above the phase threshold: O(log* n) rounds, flat across the ladder",
            notes: "dmin = 48 holds the realized degree structure (Delta ~ 100) inside one rung of the degree ladder across the sweep, isolating the regime the O(log* n) bound describes; rounds are flat. The p99 load statistic is brittle on this family's short ladders (with ~100 rounds it sits at the second-largest per-round load, flipping between a heavy dense-phase round and the background), hence the quick-scale warn.",
            spec: SweepSpec {
                family: "high-degree",
                make: high_degree_auto,
                algorithm: Algorithm::Pipeline,
                ladder: dense_ladder,
                seeds: seed_set,
                threads: 1,
                claims: HIGHDEG_CLAIMS,
            },
        }),
        Box::new(SweepScenario {
            id: "S6",
            title: "Uniform-ACD pipeline on G(n,p), shared-window lists",
            claim: "§5: the uniform implementation preserves the Theorem 1 bounds",
            notes: "Same workload as S1 under the uniform (advice-free) ACD: identical asymptotic behaviour, validating the Section 5 replacement.",
            spec: SweepSpec {
                family: "gnp-window",
                make: workloads::gnp_window,
                algorithm: Algorithm::UniformPipeline,
                ladder: main_ladder,
                seeds: seed_set,
                threads: 1,
                claims: PIPELINE_CLAIMS,
            },
        }),
    ]
}

/// Every scenario in catalog order: E0–E16c then S1–S6.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    let mut all: Vec<Box<dyn Scenario>> = Vec::new();
    all.extend(exp_plane::scenarios());
    all.extend(exp_session::scenarios());
    all.extend(exp_service::scenarios());
    all.extend(exp_server::scenarios());
    all.extend(exp_chaos::scenarios());
    all.extend(exp_crash::scenarios());
    all.extend(exp_async::scenarios());
    all.extend(exp_sharding::scenarios());
    all.extend(exp_coloring::scenarios());
    all.extend(exp_estimate::scenarios());
    all.extend(exp_hash::scenarios());
    all.extend(exp_acd::scenarios());
    all.extend(exp_ablation::scenarios());
    all.extend(sweep_scenarios());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let reg = registry();
        let ids: Vec<&str> = reg.iter().map(|s| s.id()).collect();
        let set: HashSet<&str> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len(), "duplicate scenario ids: {ids:?}");
        for wanted in [
            "E0", "E0b", "E0c", "E0d", "E0e", "E0g", "E0h", "E1", "E9", "E16c", "S1", "S2", "S3",
            "S4", "S5", "S6",
        ] {
            assert!(set.contains(wanted), "{wanted} missing from registry");
        }
        for s in &reg {
            assert!(!s.title().is_empty());
            assert!(!s.claim().is_empty());
        }
    }

    #[test]
    fn sweep_scenarios_expose_specs() {
        for s in sweep_scenarios() {
            let spec = s.sweep_spec().expect("sweep scenario has a spec");
            assert!(!(spec.ladder)(Scale::Quick).is_empty());
            assert!(!(spec.seeds)(Scale::Quick).is_empty());
            assert!(!spec.claims.is_empty());
            // Quick ladders must stay CI-sized.
            assert!((spec.ladder)(Scale::Quick).iter().all(|&n| n <= 1024));
        }
    }

    #[test]
    fn phase_summary_joins_in_order() {
        let phases = vec![("setup".to_string(), 2u64), ("fallback".to_string(), 9)];
        assert_eq!(phase_summary(&phases), "setup:2 fallback:9");
    }

    #[test]
    fn phase_means_average_across_seeds_counting_absent_as_zero() {
        let cell = |phases: Vec<(&str, u64)>| crate::sweep::SweepCell {
            n: 256,
            seed: 1,
            rounds: phases.iter().map(|(_, r)| r).sum(),
            normalized_rounds: 0,
            bandwidth: 18,
            max_edge_bits: 0,
            p50_edge_bits: 0,
            p99_edge_bits: 0,
            wall_seconds: 0.0,
            phases: phases
                .into_iter()
                .map(|(s, r)| (s.to_string(), r))
                .collect(),
        };
        let a = cell(vec![("setup", 2), ("cleanup", 8)]);
        let b = cell(vec![("setup", 2)]); // this seed skipped cleanup
        assert_eq!(phase_means(&[&a, &b]), "setup:2.0 cleanup:4.0");
    }
}
