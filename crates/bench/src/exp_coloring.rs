//! Experiments E1–E3 and E11: round complexity and bandwidth of the D1LC
//! pipeline versus the baselines.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{blend_window, gnp_d1c, gnp_window, high_degree, Scale};
use congest::SimConfig;
use d1lc::{solve, solve_random_trial, SolveOptions};
use graphs::palette::random_lists;

/// Registry entries for this module (E1–E3, E11).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        TableScenario::boxed(
            "E1",
            "D1LC round complexity vs n",
            "Theorem 1: D1LC solvable w.h.p. in O(log^5 log n) CONGEST rounds",
            e1_rounds_vs_n,
        ),
        TableScenario::boxed(
            "E2",
            "High-min-degree regime",
            "Theorem 1(b): above the phase threshold the algorithm runs in O(log* n) rounds",
            e2_high_degree,
        ),
        TableScenario::boxed(
            "E3",
            "D1C round complexity",
            "Corollary 1: D1C solvable w.h.p. in O(log^3 log n) CONGEST rounds",
            e3_d1c,
        ),
        TableScenario::boxed(
            "E11",
            "Bandwidth of one MultiTrial(x) operation",
            "Hashed trials need O(log n) bits/edge; naive trials need Theta(x log|C|)",
            e11_congestion,
        ),
    ]
}

fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

fn opts(seed: u64) -> SolveOptions {
    SolveOptions::seeded(seed)
}

/// E1 — Theorem 1(a): D1LC rounds vs n, ours vs the O(log n) baseline.
///
/// Expected shape: our round count grows like poly(log log n) (it is
/// dominated by the fixed pass structure — essentially flat across the
/// sweep), while the baseline's trial count grows with log n; normalized
/// rounds tell the same story under the bandwidth cap.
pub fn e1_rounds_vs_n(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1 — D1LC round complexity vs n (Theorem 1)",
        "D1LC solvable w.h.p. in O(log^5 log n) CONGEST rounds",
    );
    t.columns([
        "workload",
        "n",
        "rounds(us)",
        "rounds(baseline)",
        "log2 n",
        "(log2 log2 n)^5",
    ]);
    for &n in &scale.n_sweep() {
        for make in [gnp_window, blend_window] {
            let inst = make(n, 7 + n as u64);
            let ours = solve(&inst.graph, &inst.lists, opts(1)).expect("solve");
            let base = solve_random_trial(&inst.graph, &inst.lists, opts(1)).expect("baseline");
            let ll = log2(n).log2();
            t.row([
                inst.name.to_string(),
                n.to_string(),
                ours.rounds().to_string(),
                base.rounds().to_string(),
                f2(log2(n)),
                f2(ll.powi(5)),
            ]);
        }
    }
    t
}

/// E2 — Theorem 1(b): high-minimum-degree graphs (the `O(log* n)` regime,
/// threshold laptop-scaled). Rounds should not grow with n.
pub fn e2_high_degree(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2 — High-min-degree regime (Theorem 1, δ ≥ threshold)",
        "With min degree above the phase threshold the algorithm runs in O(log* n) rounds",
    );
    t.columns([
        "n",
        "min-degree",
        "phases",
        "rounds",
        "uncolored-before-cleanup",
    ]);
    for &n in &scale.n_sweep() {
        if n > 4096 {
            continue; // dense instances get quadratic in memory
        }
        let dmin = 60.min(n / 4);
        let inst = high_degree(n, dmin, 5 + n as u64);
        let r = solve(&inst.graph, &inst.lists, opts(3)).expect("solve");
        let cleanup = r.stats.colored_by.get("cleanup").copied().unwrap_or(0) + r.stats.repairs;
        t.row([
            n.to_string(),
            inst.graph.min_degree().to_string(),
            r.stats.phases.to_string(),
            r.rounds().to_string(),
            cleanup.to_string(),
        ]);
    }
    t
}

/// E3 — Corollary 1: the D1C problem (lists = `[d_v+1]`).
pub fn e3_d1c(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3 — D1C round complexity (Corollary 1)",
        "D1C solvable w.h.p. in O(log^3 log n) CONGEST rounds",
    );
    t.columns(["n", "rounds(us)", "rounds(baseline)", "repairs"]);
    for &n in &scale.n_sweep() {
        let inst = gnp_d1c(n, 11 + n as u64);
        let ours = solve(&inst.graph, &inst.lists, opts(2)).expect("solve");
        let base = solve_random_trial(&inst.graph, &inst.lists, opts(2)).expect("baseline");
        t.row([
            n.to_string(),
            ours.rounds().to_string(),
            base.rounds().to_string(),
            ours.stats.repairs.to_string(),
        ]);
    }
    t
}

/// E11 — §4.1 motivation: per-edge bandwidth of one MultiTrial(x)
/// operation, representative-hash vs the naive LOCAL version shipping raw
/// colors. (End-to-end round counts are E1's story; the bandwidth claim
/// is per operation.)
pub fn e11_congestion(scale: Scale) -> Table {
    use d1lc::baseline::NaiveMultiTrialPass;
    use d1lc::driver::Driver;
    use d1lc::multitrial::MultiTrialPass;
    use d1lc::pipeline::initial_states;
    use d1lc::ParamProfile;

    let mut t = Table::new(
        "E11 — Bandwidth of one MultiTrial(x) operation (§4.1)",
        "Hashed trials need O(log n) bits/edge; naive trials need Θ(x·log|C|)",
    );
    t.columns([
        "color-bits",
        "x",
        "bits/edge(us)",
        "bits/edge(naive)",
        "rounds@B(us)",
        "rounds@B(naive)",
    ]);
    let n = match scale {
        Scale::Quick => 512,
        Scale::Full => 2048,
    };
    // "O(log n)" bandwidth with a small constant: the regime where naive
    // color shipping hurts.
    let bandwidth = SimConfig::congest_bits(n, 6);
    let profile = ParamProfile::laptop();
    let x = 32u32;
    for color_bits in [16u32, 32, 48, 60] {
        let p = (12.0 / n as f64).min(0.5);
        let graph = graphs::gen::gnp(n, p, 3);
        let lists = random_lists(&graph, color_bits, 4, 9);
        let make_states = || {
            let mut states = initial_states(&graph, &lists, &profile, 3);
            for st in &mut states {
                st.active = true;
                for a in &mut st.neighbor_active {
                    *a = true;
                }
            }
            states
        };
        let mut driver = Driver::new(&graph, SimConfig::seeded(1));
        driver
            .run_pass("mt", make_states(), |st| {
                MultiTrialPass::new(st, x, profile, 42, n, "mt")
            })
            .expect("rep-hash pass");
        let ours_bits = driver.log.max_edge_bits();
        let mut driver = Driver::new(&graph, SimConfig::seeded(1));
        driver
            .run_pass("naive", make_states(), |st| {
                NaiveMultiTrialPass::new(st, x, color_bits)
            })
            .expect("naive pass");
        let naive_bits = driver.log.max_edge_bits();
        t.row([
            color_bits.to_string(),
            x.to_string(),
            ours_bits.to_string(),
            naive_bits.to_string(),
            ours_bits.div_ceil(bandwidth).to_string(),
            naive_bits.div_ceil(bandwidth).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows() {
        let t = e1_rounds_vs_n(Scale::Quick);
        assert!(t.len() >= 4);
    }

    #[test]
    fn e11_shows_naive_flooding() {
        let t = e11_congestion(Scale::Quick);
        assert_eq!(t.len(), 4);
    }
}
