//! E0 — the engine message-plane microbenchmark.
//!
//! Every experiment in the catalog bottoms out in `congest::run`, so the
//! plane's routing throughput is the lever behind the ROADMAP's "as fast
//! as the hardware allows" goal (and the instance sizes of the follow-up
//! paper arXiv:2308.01359). E0 runs a fixed 50-round flood workload on a
//! sparse G(n, 10/n) instance through:
//!
//! * the pre-PR sort-and-scatter plane (`congest::reference`), and
//! * the CSR edge-indexed mailbox plane at 1, 2 and 8 threads,
//!
//! and reports wall clock, speedup, and delivered-message throughput.
//! The run **asserts** that all four configurations produce the same
//! `RunReport` and the same final program states — the transcript
//! identity the engine guarantees — so a perf regression can never hide
//! a correctness one.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::Scale;
use congest::reference::run_reference;
use congest::{run, Ctx, Message, Program, RunReport, SimConfig};
use graphs::{gen, Graph};
use std::time::Instant;

/// Registry entries for this module (E0).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0",
        "Engine message-plane microbench",
        "CSR mailbox plane >= 2x the sort-and-scatter reference at 1 thread",
        e0_engine_plane,
    )]
}

/// Rounds every node stays active (the workload's round budget).
pub const ROUNDS: u32 = 50;
/// Repetitions per configuration; the minimum wall time is reported.
pub const REPS: usize = 5;

/// The flood payload: one machine word costing a CONGEST-ish 20 bits.
#[derive(Clone)]
pub struct Tick(pub u64);

impl Message for Tick {
    fn bit_cost(&self) -> u64 {
        20
    }
}

/// How a [`Flood`] node pushes its payload each round.
#[derive(Clone, Copy, PartialEq)]
pub enum Mode {
    /// `ctx.broadcast` — the dominant pattern of the HNT22 protocols
    /// (trials, slack announcements, hash indices go to every neighbor).
    Bcast,
    /// Per-neighbor `ctx.send` in descending id order — exercises the
    /// O(1) destination resolve and, on the reference plane, its
    /// per-round outbox sort.
    Targeted,
}

/// Floods for [`ROUNDS`] rounds with a deliberately *cheap* program — a
/// fold of the inbox length and first sender — so the measurement
/// isolates the message plane, not program compute. (Message-content
/// fidelity is covered by the engine's differential tests; E0 still
/// asserts bit/message/report equality across planes.)
#[derive(Clone)]
pub struct Flood {
    mode: Mode,
    /// Running transcript fold (the cross-plane identity witness).
    pub acc: u64,
    left: u32,
    done: bool,
}

impl Program for Flood {
    type Msg = Tick;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Tick>) {
        if self.done {
            return;
        }
        let inbox = ctx.inbox();
        let first = inbox.first().map_or(0, |&(u, Tick(x))| x ^ u64::from(u));
        self.acc = self
            .acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(inbox.len() as u64 ^ first);
        if self.left == 0 {
            self.done = true;
            return;
        }
        self.left -= 1;
        let payload = Tick(self.acc ^ u64::from(ctx.id()));
        match self.mode {
            Mode::Bcast => ctx.broadcast(payload),
            Mode::Targeted => {
                let neighbors = ctx.neighbors();
                for &w in neighbors.iter().rev() {
                    ctx.send(w, payload.clone());
                }
            }
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// One [`Flood`] program per node (shared by E0 and the
/// `engine_plane` criterion bench).
pub fn programs(n: usize, mode: Mode) -> Vec<Flood> {
    (0..n)
        .map(|_| Flood {
            mode,
            acc: 0,
            left: ROUNDS,
            done: false,
        })
        .collect()
}

type Runner = fn(&Graph, Vec<Flood>, SimConfig) -> (Vec<Flood>, RunReport);

fn run_new(g: &Graph, p: Vec<Flood>, cfg: SimConfig) -> (Vec<Flood>, RunReport) {
    run(g, p, cfg).expect("plane run")
}

fn run_ref(g: &Graph, p: Vec<Flood>, cfg: SimConfig) -> (Vec<Flood>, RunReport) {
    run_reference(g, p, cfg).expect("reference run")
}

/// E0 — CSR mailbox plane vs the pre-PR sort-and-scatter plane.
pub fn e0_engine_plane(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 4_000,
        Scale::Full => 20_000,
    };
    let graph = gen::gnp(n, 10.0 / n as f64, 42);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0 — engine message plane, gnp n={n} p=10/n, {ROUNDS} rounds (min of {REPS}, host cores={cores})",
        ),
        "CSR mailbox ≥2× the sort-and-scatter plane at 1 thread; threads>1 helps given >1 core",
    );
    t.columns([
        "workload",
        "plane",
        "threads",
        "wall ms",
        "speedup",
        "Mmsg/s",
        "rounds",
        "msgs",
        "max bits/edge",
        "p99 bits/edge",
    ]);

    let configs: [(&str, Runner, usize); 4] = [
        ("reference", run_ref as Runner, 1),
        ("mailbox", run_new as Runner, 1),
        ("mailbox", run_new as Runner, 2),
        ("mailbox", run_new as Runner, 8),
    ];
    for (workload, mode) in [("bcast-flood", Mode::Bcast), ("send-flood", Mode::Targeted)] {
        let mut baseline_ms = 0.0f64;
        let mut witness: Option<(Vec<u64>, RunReport)> = None;
        for (plane, runner, threads) in configs {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(7)
            };
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..REPS {
                let progs = programs(n, mode);
                let start = Instant::now();
                let (final_progs, report) = runner(&graph, progs, cfg);
                best = best.min(start.elapsed().as_secs_f64());
                out = Some((final_progs, report));
            }
            let (final_progs, report) = out.expect("at least one rep");
            let states: Vec<u64> = final_progs.iter().map(|p| p.acc).collect();
            // Transcript identity across planes and thread counts.
            match &witness {
                None => witness = Some((states, report.clone())),
                Some((ws, wr)) => {
                    assert_eq!(wr, &report, "RunReport diverged: {plane} t={threads}");
                    assert_eq!(ws, &states, "states diverged: {plane} t={threads}");
                }
            }
            let ms = best * 1e3;
            if plane == "reference" {
                baseline_ms = ms;
            }
            t.row([
                workload.to_string(),
                plane.to_string(),
                threads.to_string(),
                f2(ms),
                f2(baseline_ms / ms),
                f2(report.messages as f64 / best / 1e6),
                report.rounds.to_string(),
                report.messages.to_string(),
                report.max_edge_bits().to_string(),
                report.edge_load.percentile(0.99).to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flood workload itself is deterministic and plane-agnostic (the
    /// full-size assertions live inside `e0_engine_plane`; this keeps a
    /// fast guard in the unit suite).
    #[test]
    fn flood_matches_reference_on_small_instance() {
        let g = gen::gnp(300, 0.03, 5);
        let cfg = SimConfig::seeded(3);
        for mode in [Mode::Bcast, Mode::Targeted] {
            let (a, ra) = run(&g, programs(300, mode), cfg).expect("run");
            let (b, rb) = run_reference(&g, programs(300, mode), cfg).expect("reference");
            assert_eq!(ra, rb);
            assert!(a.iter().zip(&b).all(|(x, y)| x.acc == y.acc));
            assert_eq!(ra.rounds, u64::from(ROUNDS) + 1);
        }
    }
}
