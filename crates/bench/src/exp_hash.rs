//! Experiments E9, E10, E12: MultiTrial success probability, Lemma 1
//! goodness fractions, and the uniform implementations.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f3, Table};
use crate::workloads::Scale;
use congest::SimConfig;
use d1lc::driver::Driver;
use d1lc::multitrial::MultiTrialPass;
use d1lc::multitrial_uniform::UniformMultiTrialPass;
use d1lc::wire::ColorCodec;
use d1lc::{uniform_buddy, NodeState, Palette, ParamProfile, UniformBuddyParams};
use graphs::{gen, Graph, NodeId};
use prand::{RepHashFamily, RepParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registry entries for this module (E9, E10, E12).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        TableScenario::boxed(
            "E9",
            "MultiTrial(x) success probability",
            "Lemma 6: one MultiTrial(x) colors v w.p. >= 1-(7/8)^x-2nu",
            e9_multitrial,
        ),
        TableScenario::boxed(
            "E10",
            "Representative-family goodness",
            "Lemma 1: at least a (1-nu) fraction of the family is (A,B)-good",
            e10_rep_goodness,
        ),
        TableScenario::boxed(
            "E12",
            "Uniform implementations",
            "Section 5: explicit hashing + samplers + ECC match the advice-based behaviour",
            e12_uniform,
        ),
    ]
}

fn states_with_extra(g: &Graph, extra: usize, seed: u64) -> Vec<NodeState> {
    let profile = ParamProfile::laptop();
    (0..g.n())
        .map(|v| {
            let d = g.degree(v as NodeId);
            let list: Vec<u64> = (0..(d + 1 + extra) as u64)
                .map(|i| i * 101 + seed)
                .collect();
            let mut st = NodeState::new(
                v as NodeId,
                Palette::new(list),
                ColorCodec::new(&profile, 7, g.n(), 32, d),
                d,
            );
            st.active = true;
            st.neighbor_active = vec![true; d];
            st
        })
        .collect()
}

/// Success rate of one MultiTrial(x) on K9 with 64-color palettes
/// (x respects the Lemma 6 cap `|Ψ|/(2|N|) = 4`).
fn multitrial_success(x: u32, trials: u64, uniform: bool) -> f64 {
    let profile = ParamProfile::laptop();
    let mut colored = 0usize;
    let mut total = 0usize;
    for t in 0..trials {
        let g = gen::complete(9);
        let states = states_with_extra(&g, 55, t);
        let mut driver = Driver::new(&g, SimConfig::seeded(900 + t));
        let states = if uniform {
            driver
                .run_pass("mt", states, |st| {
                    UniformMultiTrialPass::new(st, x, profile, 42, 9, "mt")
                })
                .expect("pass")
        } else {
            driver
                .run_pass("mt", states, |st| {
                    MultiTrialPass::new(st, x, profile, 42, 9, "mt")
                })
                .expect("pass")
        };
        colored += states.iter().filter(|s| s.color.is_some()).count();
        total += states.len();
    }
    colored as f64 / total as f64
}

/// E9 — Lemma 6: MultiTrial success probability vs x.
pub fn e9_multitrial(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9 — MultiTrial(x) success probability (Lemma 6)",
        "One MultiTrial(x) colors v w.p. ≥ 1 − (7/8)^x − 2ν when x ≤ |Ψ|/(2|N(v)|)",
    );
    t.columns(["x", "success-rate", "lemma-floor 1-(7/8)^x"]);
    let trials = scale.trials();
    for x in [1u32, 2, 4] {
        let rate = multitrial_success(x, trials, false);
        let floor = 1.0 - 0.875f64.powi(x as i32);
        t.row([x.to_string(), f3(rate), f3(floor)]);
    }
    t
}

/// E10 — Lemma 1: empirical `(A,B)`-good fractions of the seeded family.
pub fn e10_rep_goodness(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10 — Representative-family goodness (Lemma 1)",
        "At least a (1−ν) fraction of the family is (A,B)-good for every pair (A,B)",
    );
    t.columns(["sigma", "|A|", "|B|", "good-fraction", "1-nu(params)"]);
    let members = match scale {
        Scale::Quick => 256u64,
        Scale::Full => 1024,
    };
    for sigma in [64u64, 128, 256] {
        for (a_size, b_size) in [(150usize, 150usize), (150, 50), (60, 150)] {
            let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, sigma, 12);
            let fam = RepHashFamily::new(77, params);
            let a: Vec<u64> = (0..a_size as u64).map(|i| i * 13).collect();
            let b: Vec<u64> = (0..b_size as u64).map(|i| i * 13 + 500).collect();
            let beta = params.beta;
            let (mu, cap) = if (a.len() as f64) >= params.large_set_threshold() {
                let mu = sigma as f64 * a.len() as f64 / params.lambda as f64;
                (mu, 2.0 * mu * beta)
            } else {
                let mu = sigma as f64 * params.alpha;
                (mu, 2.0 * mu * beta)
            };
            let mut good = 0u64;
            for i in 0..members {
                let h = fam.member(i);
                let low = h.low(&a).len() as f64;
                let coll = h.colliding(&a, &b).len() as f64;
                let ok_low = if (a.len() as f64) >= params.large_set_threshold() {
                    (low - mu).abs() <= beta * mu
                } else {
                    low <= mu * (1.0 + beta)
                };
                if ok_low && coll <= cap {
                    good += 1;
                }
            }
            t.row([
                sigma.to_string(),
                a_size.to_string(),
                b_size.to_string(),
                f3(good as f64 / members as f64),
                f3(1.0 - params.nu),
            ]);
        }
    }
    t
}

/// E12 — §5: the uniform implementations match the non-uniform behaviour.
pub fn e12_uniform(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 — Uniform implementations (§5)",
        "Explicit pairwise hashing + samplers + ECC replace representative families with the same behaviour",
    );
    t.columns(["procedure", "configuration", "metric", "value"]);
    let trials = scale.trials();
    for x in [1u32, 4] {
        let nu_rate = multitrial_success(x, trials, false);
        let u_rate = multitrial_success(x, trials, true);
        t.row([
            "multitrial".into(),
            format!("x={x} rep-hash"),
            "success-rate".into(),
            f3(nu_rate),
        ]);
        t.row([
            "multitrial".into(),
            format!("x={x} uniform"),
            "success-rate".into(),
            f3(u_rate),
        ]);
    }
    // Uniform buddy confusion rates.
    let params = UniformBuddyParams::default();
    let accept = |nu: &[u64], nv: &[u64]| -> f64 {
        let hits = (0..trials)
            .filter(|&t| {
                let mut rng = StdRng::seed_from_u64(t);
                uniform_buddy(&params, nu, nv, 42, &mut rng).friends
            })
            .count();
        hits as f64 / trials as f64
    };
    let identical: Vec<u64> = (0..60).collect();
    let disjoint: Vec<u64> = (1000..1060).collect();
    t.row([
        "buddy".into(),
        "identical neighborhoods".into(),
        "accept-rate".into(),
        f3(accept(&identical, &identical)),
    ]);
    t.row([
        "buddy".into(),
        "disjoint neighborhoods".into(),
        "accept-rate".into(),
        f3(accept(&identical, &disjoint)),
    ]);
    // Whole-graph ACD: representative-hash vs uniform variant, dense
    // recall on a planted instance.
    for (label, uniform) in [("rep-hash", false), ("uniform", true)] {
        let mut recall_sum = 0.0;
        let runs = (trials / 10).max(2);
        for trial in 0..runs {
            let (g, truth) = gen::planted_acd(3, 18, 0.05, 50, 0.05, 60 + trial);
            let profile = ParamProfile::laptop();
            let states: Vec<NodeState> = (0..g.n())
                .map(|v| {
                    let d = g.degree(v as NodeId);
                    let list: Vec<u64> = (0..=(d as u64)).collect();
                    let mut st = NodeState::new(
                        v as NodeId,
                        Palette::new(list),
                        ColorCodec::new(&profile, 1, g.n(), 16, d),
                        d,
                    );
                    st.active = true;
                    st.neighbor_active = vec![true; d];
                    st
                })
                .collect();
            let mut driver = Driver::new(&g, SimConfig::seeded(trial));
            let states = if uniform {
                d1lc::acd_uniform::compute_acd_uniform(&mut driver, states, &profile, 5 + trial)
                    .expect("uniform acd")
            } else {
                d1lc::acd::compute_acd(&mut driver, states, &profile, 5 + trial).expect("acd")
            };
            let mut planted = 0;
            let mut dense = 0;
            for (v, tr) in truth.iter().enumerate() {
                if tr.is_some() {
                    planted += 1;
                    if states[v].class == d1lc::AcdClass::Dense {
                        dense += 1;
                    }
                }
            }
            recall_sum += dense as f64 / planted.max(1) as f64;
        }
        t.row([
            "acd".into(),
            format!("planted blend, {label}"),
            "dense-recall".into(),
            f3(recall_sum / runs as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_has_three_rows() {
        assert_eq!(e9_multitrial(Scale::Quick).len(), 3);
    }

    #[test]
    fn e10_runs() {
        assert_eq!(e10_rep_goodness(Scale::Quick).len(), 9);
    }
}
