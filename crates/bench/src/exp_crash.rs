//! E0g — crash-chaos sweep: full pipeline solves under deterministic
//! crash-stop / crash-recovery node fates.
//!
//! PR 9 extends the fault layer ([`congest::FaultPlan`]) with per-node
//! crash fates: each live node crashes independently per round with a
//! fixed-point probability, stays down for the rest of the run
//! (crash-stop) or for a bounded window (crash-recovery), and every
//! fate is a stateless hash of `(pass seed, salt, node, round)` — so
//! the whole failure schedule is byte-identical across every
//! shard/thread/engine geometry. Crashed nodes stop stepping and
//! sending, their in-flight bundles are dropped, and the pipeline
//! quarantines and recolors whatever the crashes left behind
//! (DESIGN.md §10). E0g sweeps crash-rate × recovery-delay (plus one
//! composition with message loss) over the S1 workload family, crossed
//! with session-engine shards {1, 2, 4, 8} and threads {1, 2, 8}.
//!
//! The run **asserts**, before any timing:
//!
//! * every crashed solve still yields a **proper coloring** — the
//!   quarantine-and-recolor guarantee, at every crash rate;
//! * every plan's outcome is **byte-identical** across engine modes
//!   (session, per-pass sweep, legacy reference) and the full
//!   shards × threads grid — same coloring, same per-pass log, crash
//!   and fault counters included;
//! * the `none` arm is byte-identical to a solve with a default
//!   (fault-free) `SimConfig` — a plan without crash fates costs
//!   nothing and changes nothing.
//!
//! `BENCH_9.json` at the repo root is the committed full-scale snapshot.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Instance, Scale};
use congest::{FaultPlan, SimConfig};
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use graphs::palette::check_coloring;
use std::time::Instant;

/// Registry entries for this module (E0g).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0g",
        "Crash-chaos sweep: crash-stop/crash-recovery nodes under the full pipeline",
        "Every crashed solve ends in a proper coloring (quarantine-and-recolor) and is \
         byte-identical across engine modes, shards {1, 2, 4, 8}, and threads {1, 2, 8}; \
         a plan without crash fates reproduces the fault-free solve bit for bit; rounds \
         and central repairs degrade gracefully as the crash rate rises",
        e0g_crash,
    )]
}

/// Solve seed (a member of the S1 sweep's seed set, matching E0e).
pub const SEED: u64 = 1;

/// Per-pass round cap for every crash arm. Crash-stopped nodes never
/// report done, so their passes always run to this cap (the quarantined
/// nodes are then recolored in the repair sweep); the cap bounds the
/// sweep's wall clock and is applied to the fault-free anchor too so
/// the `none` identity assertion compares equal configs.
const MAX_ROUNDS: u64 = 256;

/// Session-engine ownership shard counts crossed with every plan.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Worker thread counts crossed with every plan.
const THREADS: [usize; 3] = [1, 2, 8];

/// The `(shards, threads)` cells that get a printed (timed) row; the
/// identity assertions still cover the full grid.
const TIMED: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 8), (8, 8)];

/// The swept crash plans, mildest to harshest.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "crash 0.002 rec 4",
            FaultPlan::none().with_crashes(0.002, 4),
        ),
        ("crash 0.01 rec 2", FaultPlan::none().with_crashes(0.01, 2)),
        ("crash 0.01 stop", FaultPlan::none().with_crashes(0.01, 0)),
        (
            "crash 0.005 rec 2 drop 0.2",
            FaultPlan::lossy(0.2).with_crashes(0.005, 2),
        ),
    ]
}

/// One timed solve under `plan`; returns wall seconds and the
/// (deterministic) result.
fn crash_solve(
    inst: &Instance,
    engine: EngineMode,
    threads: usize,
    shards: usize,
    plan: FaultPlan,
) -> (f64, SolveResult) {
    let opts = SolveOptions {
        engine,
        sim: SimConfig {
            threads,
            shards,
            fault: plan,
            max_rounds: MAX_ROUNDS,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(SEED)
    };
    let start = Instant::now();
    let result = solve(&inst.graph, &inst.lists, opts).expect("crash solve completes");
    (start.elapsed().as_secs_f64(), result)
}

/// E0g — crash-rate × recovery × shards × threads sweep with
/// cross-engine identity witness.
pub fn e0g_crash(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![128, 256],
        Scale::Full => vec![256, 1024],
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0g — crash-chaos sweep, d1lc solve on gnp-window (S1 family) under seeded \
             crash fates, seed {SEED}, max {MAX_ROUNDS} rounds/pass (host cores={cores})",
        ),
        "Proper colorings and byte-identical transcripts under every crash plan, engine \
         mode, shard count, and thread count; quarantine-and-recolor absorbs what the \
         crashes take down",
    );
    t.columns([
        "n",
        "plan",
        "shards",
        "threads",
        "wall ms",
        "rounds",
        "crashes",
        "crashed",
        "quarantined",
        "repairs",
        "dropped",
        "starved",
    ]);
    for n in sizes {
        let inst = workloads::gnp_window(n, SEED);
        for (label, plan) in plans() {
            // Witness arm: the session engine at 1 thread, 1 shard.
            let (_, witness) = crash_solve(&inst, EngineMode::Session, 1, 1, plan);
            assert_eq!(
                check_coloring(&inst.graph, &inst.lists, &witness.coloring),
                Ok(()),
                "E0g: improper coloring under plan '{label}' at n={n}"
            );
            if !plan.is_active() {
                // A plan without crash fates must be invisible: bit for
                // bit the fault-free engine (same config minus the plan
                // field).
                let baseline = {
                    let opts = SolveOptions {
                        sim: SimConfig {
                            shards: 1,
                            max_rounds: MAX_ROUNDS,
                            ..SimConfig::default()
                        },
                        ..SolveOptions::seeded(SEED)
                    };
                    solve(&inst.graph, &inst.lists, opts).expect("fault-free solve")
                };
                assert_eq!(
                    witness.coloring, baseline.coloring,
                    "E0g: FaultPlan::none() changed the coloring at n={n}"
                );
                assert_eq!(
                    witness.log.passes(),
                    baseline.log.passes(),
                    "E0g: FaultPlan::none() changed the pass log at n={n}"
                );
            }
            let check = |arm: &str, result: &SolveResult| {
                assert_eq!(
                    witness.coloring, result.coloring,
                    "E0g: coloring diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    witness.log.passes(),
                    result.log.passes(),
                    "E0g: pass log diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    witness.stats, result.stats,
                    "E0g: stats diverged ({arm}, plan '{label}', n={n})"
                );
            };
            // Generational identity: the per-pass sweep and the legacy
            // reference plane draw the same crash fates node for node
            // (one arm each; the reference plane is slow and ignores
            // the shard knob).
            let (_, per_pass) = crash_solve(&inst, EngineMode::PerPass, 1, 1, plan);
            check("per-pass t=1", &per_pass);
            let (_, reference) = crash_solve(&inst, EngineMode::Reference, 1, 1, plan);
            check("reference t=1", &reference);
            // The full shards × threads grid is asserted; the TIMED
            // diagonal gets printed rows.
            for shards in SHARDS {
                for threads in THREADS {
                    let (wall, result) =
                        crash_solve(&inst, EngineMode::Session, threads, shards, plan);
                    check(&format!("session s={shards} t={threads}"), &result);
                    if !TIMED.contains(&(shards, threads)) {
                        continue;
                    }
                    let faults = result.log.fault_totals();
                    t.row([
                        n.to_string(),
                        label.into(),
                        shards.to_string(),
                        threads.to_string(),
                        f2(wall * 1e3),
                        result.rounds().to_string(),
                        faults.crashes.to_string(),
                        result.log.crashed_union().len().to_string(),
                        result.stats.quarantined.to_string(),
                        result.stats.repairs.to_string(),
                        faults.dropped.to_string(),
                        result.log.starved_union().len().to_string(),
                    ]);
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The swept plans cover the advertised axes and stay distinct.
    #[test]
    fn plans_cover_the_axes() {
        let ps = plans();
        assert_eq!(ps[0].1, FaultPlan::none());
        assert!(!ps[0].1.is_active());
        assert!(ps[1..].iter().all(|(_, p)| p.is_active()));
        assert!(ps[1..].iter().all(|(_, p)| p.crash_q > 0));
        for window in ps.windows(2) {
            assert_ne!(window[0].1, window[1].1, "duplicate plan in the sweep");
        }
        assert!(
            ps.iter()
                .any(|(_, p)| p.crash_q > 0 && p.crash_recovery == 0),
            "no crash-stop arm"
        );
        assert!(
            ps.iter()
                .any(|(_, p)| p.crash_q > 0 && p.crash_recovery > 0),
            "no crash-recovery arm"
        );
        assert!(
            ps.iter().any(|(_, p)| p.crash_q > 0 && p.drop_q > 0),
            "no crash × message-loss composition arm"
        );
        for (shards, threads) in TIMED {
            assert!(SHARDS.contains(&shards) && THREADS.contains(&threads));
        }
    }

    /// A tiny crash cell runs end to end: proper coloring, crashes
    /// actually recorded and quarantined, and the session/per-pass arms
    /// agree across a shard split.
    #[test]
    fn crash_cell_smoke() {
        let inst = workloads::gnp_window(96, SEED);
        let plan = FaultPlan::none().with_crashes(0.05, 2);
        let (_, session) = crash_solve(&inst, EngineMode::Session, 2, 4, plan);
        assert_eq!(
            check_coloring(&inst.graph, &inst.lists, &session.coloring),
            Ok(())
        );
        assert!(
            session.log.fault_totals().crashes > 0,
            "no crashes recorded"
        );
        assert!(
            !session.log.crashed_union().is_empty(),
            "no crashed nodes recorded"
        );
        let (_, per_pass) = crash_solve(&inst, EngineMode::PerPass, 1, 1, plan);
        assert_eq!(session.coloring, per_pass.coloring);
        assert_eq!(session.log.passes(), per_pass.log.passes());
        assert_eq!(session.stats.quarantined, per_pass.stats.quarantined);
    }
}
