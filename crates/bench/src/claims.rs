//! The claim checker: fits measured sweep curves against the paper's
//! asymptotic forms and emits pass/warn verdicts.
//!
//! The paper proves *asymptotic* statements (`O(log^5 log n)` rounds,
//! `O(log n)` bits per edge per round); a finite sweep can never verify an
//! asymptotic bound, but it can check **consistency**: across a geometric
//! ladder `n_0 < n_1 < … < n_k`, the measured growth of a metric must not
//! outpace the growth the claimed form allows, with a fixed slack factor
//! for constants and noise. Operationally (see DESIGN.md §5):
//!
//! > A metric `v(n)` is *consistent with* `O(f(n))` over a ladder when
//! > `v(n_k)/v(n_0) ≤ SLACK · f(n_k)/f(n_0)`, using per-`n` means across
//! > seeds and `SLACK = 1.5`.
//!
//! A failed check yields [`Verdict::Warn`], not a hard error: sweeps are
//! measurements, and the generated EXPERIMENTS.md records the verdict so a
//! regression shows up as a diff (which the CI drift gate catches), not as
//! a flaky red build.

use crate::table::f2;

/// Slack factor the growth-ratio test allows over the claimed form
/// (absorbs lower-order terms, constants settling, and seed noise).
pub const GROWTH_SLACK: f64 = 1.5;

/// An asymptotic growth form `f(n)` the paper claims for some metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Form {
    /// `O(log^k log n)` — the paper's poly-log-log round bounds
    /// (Theorem 1: `k = 5`; Corollary 1: `k = 3`).
    PolyLogLog(u32),
    /// `O(log n)` — the classical baseline round bound and the CONGEST
    /// bandwidth budget.
    LogN,
    /// `O(log* n)` — treated as constant across any laptop-scale ladder
    /// (log* is 4–5 for every feasible `n`).
    LogStar,
}

impl Form {
    /// Human-readable form label (used in reports and JSON).
    pub fn label(self) -> String {
        match self {
            Form::PolyLogLog(k) => format!("O(log^{k} log n)"),
            Form::LogN => "O(log n)".to_string(),
            Form::LogStar => "O(log* n)".to_string(),
        }
    }

    /// Evaluate the growth function at `n` (clamped so iterated logs stay
    /// positive and ratios are well defined).
    pub fn eval(self, n: f64) -> f64 {
        match self {
            Form::PolyLogLog(k) => n.max(4.0).log2().log2().max(1.0).powi(k as i32),
            Form::LogN => n.max(2.0).log2(),
            Form::LogStar => 1.0,
        }
    }
}

/// Outcome of one consistency check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Measured growth is within the allowed envelope.
    Pass,
    /// Measured growth exceeds the envelope — flagged for attention.
    Warn,
}

impl Verdict {
    /// Stable lowercase tag used in JSON and reports.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Warn => "warn",
        }
    }
}

/// One checked claim: which metric, against which form, with what result.
#[derive(Clone, Debug)]
pub struct ClaimCheck {
    /// Metric name (`"rounds"`, `"max-edge-bits"`, …).
    pub metric: String,
    /// The claimed form's label (e.g. `"O(log^5 log n)"`).
    pub form: String,
    /// Pass/warn verdict.
    pub verdict: Verdict,
    /// Deterministic human-readable evidence (ratios and fitted constant).
    pub detail: String,
}

/// Check that measured `points` (ladder size `n` → per-`n` mean of the
/// metric) are consistent with `O(f(n))` growth.
///
/// Points need not be sorted; at least two distinct sizes are required
/// (otherwise the check degenerates to a [`Verdict::Warn`] explaining so).
///
/// # Example
///
/// ```
/// use bench::claims::{check_growth, Form, Verdict};
///
/// // A curve that really grows like (log log n)^5 …
/// let curve: Vec<(f64, f64)> = [1024.0, 4096.0, 16384.0, 65536.0]
///     .iter()
///     .map(|&n| (n, 3.0 * Form::PolyLogLog(5).eval(n)))
///     .collect();
/// // … is consistent with its own form but not with O(log* n).
/// assert_eq!(check_growth("rounds", Form::PolyLogLog(5), &curve).verdict, Verdict::Pass);
/// assert_eq!(check_growth("rounds", Form::LogStar, &curve).verdict, Verdict::Warn);
/// ```
pub fn check_growth(metric: &str, form: Form, points: &[(f64, f64)]) -> ClaimCheck {
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in sweep data"));
    pts.dedup_by(|a, b| a.0 == b.0);
    if pts.len() < 2 {
        return ClaimCheck {
            metric: metric.to_string(),
            form: form.label(),
            verdict: Verdict::Warn,
            detail: format!(
                "need >= 2 ladder sizes to fit a growth form, got {}",
                pts.len()
            ),
        };
    }
    let (n0, v0) = pts[0];
    let (n1, v1) = pts[pts.len() - 1];
    // A zero baseline cannot form a ratio: nonzero growth out of zero is
    // unbounded (warn), zero-to-zero is flat (pass). No clamping — a
    // fractional baseline must not understate measured growth.
    let measured = if v0 > 0.0 {
        v1 / v0
    } else if v1 > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let form_ratio = form.eval(n1) / form.eval(n0);
    let allowed = GROWTH_SLACK * form_ratio;
    // Fitted leading constant: mean of v_i / f(n_i) over the ladder.
    let c = pts.iter().map(|&(n, v)| v / form.eval(n)).sum::<f64>() / pts.len() as f64;
    let verdict = if measured <= allowed {
        Verdict::Pass
    } else {
        Verdict::Warn
    };
    ClaimCheck {
        metric: metric.to_string(),
        form: form.label(),
        verdict,
        detail: format!(
            "growth x{} over n {}..{} vs allowed x{} (slack {} x form x{}); fitted c~{}",
            f2(measured),
            n0 as u64,
            n1 as u64,
            f2(allowed),
            f2(GROWTH_SLACK),
            f2(form_ratio),
            f2(c),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ladder of n values paired with `v(n)` for the given function.
    fn curve(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [1024.0f64, 2048.0, 4096.0, 8192.0, 16384.0, 65536.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn polyloglog_curve_passes_its_own_form() {
        for k in [3u32, 5] {
            let pts = curve(|n| 2.5 * Form::PolyLogLog(k).eval(n) + 10.0);
            let c = check_growth("rounds", Form::PolyLogLog(k), &pts);
            assert_eq!(c.verdict, Verdict::Pass, "{}", c.detail);
        }
    }

    #[test]
    fn log_curve_passes_log_but_fails_logstar() {
        let pts = curve(|n| 4.0 * n.log2());
        assert_eq!(check_growth("r", Form::LogN, &pts).verdict, Verdict::Pass);
        assert_eq!(
            check_growth("r", Form::LogStar, &pts).verdict,
            Verdict::Warn
        );
    }

    #[test]
    fn flat_curve_passes_every_form() {
        let pts = curve(|_| 42.0);
        for form in [Form::PolyLogLog(5), Form::LogN, Form::LogStar] {
            assert_eq!(check_growth("r", form, &pts).verdict, Verdict::Pass);
        }
    }

    #[test]
    fn polynomial_curve_fails_every_claimed_form() {
        let pts = curve(|n| n.sqrt());
        for form in [Form::PolyLogLog(5), Form::PolyLogLog(3), Form::LogN] {
            let c = check_growth("r", form, &pts);
            assert_eq!(c.verdict, Verdict::Warn, "{}", c.detail);
        }
    }

    #[test]
    fn log_growth_exceeds_polyloglog_on_wide_ladders() {
        // Θ(log n) growth must *not* be mistaken for poly(log log n) once
        // the ladder is wide enough for the forms to separate.
        let pts: Vec<(f64, f64)> = (10..=40)
            .step_by(2)
            .map(|e| {
                let n = (2.0f64).powi(e);
                (n, 1.5 * n.log2())
            })
            .collect();
        let c = check_growth("rounds", Form::PolyLogLog(1), &pts);
        assert_eq!(c.verdict, Verdict::Warn, "{}", c.detail);
    }

    #[test]
    fn fractional_and_zero_baselines_are_not_clamped() {
        // 0.5 → 1.5 over one octave is 3.0x growth — above the O(log n)
        // envelope (1.5 × log-ratio ≈ 1.65) — and must warn even though
        // both values are below 1.
        let pts = [(1024.0, 0.5), (2048.0, 1.5)];
        assert_eq!(check_growth("r", Form::LogN, &pts).verdict, Verdict::Warn);
        // Zero-to-nonzero is unbounded growth; zero-to-zero is flat.
        let from_zero = [(1024.0, 0.0), (2048.0, 2.0)];
        assert_eq!(
            check_growth("r", Form::LogN, &from_zero).verdict,
            Verdict::Warn
        );
        let all_zero = [(1024.0, 0.0), (2048.0, 0.0)];
        assert_eq!(
            check_growth("r", Form::LogN, &all_zero).verdict,
            Verdict::Pass
        );
    }

    #[test]
    fn single_point_warns() {
        let c = check_growth("r", Form::LogN, &[(1024.0, 10.0)]);
        assert_eq!(c.verdict, Verdict::Warn);
        assert!(c.detail.contains("need >= 2"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Form::PolyLogLog(5).label(), "O(log^5 log n)");
        assert_eq!(Form::LogN.label(), "O(log n)");
        assert_eq!(Form::LogStar.label(), "O(log* n)");
        assert_eq!(Verdict::Pass.tag(), "pass");
        assert_eq!(Verdict::Warn.tag(), "warn");
    }

    #[test]
    fn detail_is_deterministic() {
        let pts = curve(|n| 3.0 * n.log2());
        let a = check_growth("rounds", Form::LogN, &pts);
        let b = check_growth("rounds", Form::LogN, &pts);
        assert_eq!(a.detail, b.detail);
        assert!(a.detail.contains("fitted c~3.00"), "{}", a.detail);
    }
}
