//! The sweep driver: runs a scenario's algorithm over a scale ladder ×
//! seed set and collects per-cell measurements.
//!
//! One *cell* is one `(n, seed)` run. For each cell the driver records
//! CONGEST rounds, bandwidth-normalized rounds at the cell's `O(log n)`
//! budget, the [`congest::LoadProfile`] maximum and percentiles of the
//! per-round edge loads, wall-clock time, and the per-phase round
//! breakdown the pipeline's [`d1lc::driver::Driver::begin_phase`] hooks
//! expose.
//! Aggregated per-`n` means then feed the claim checker
//! ([`crate::claims`]) and the report emitter ([`crate::report`]).

use crate::claims::{check_growth, ClaimCheck, Form};
use crate::workloads::{Instance, Scale};
use congest::SimConfig;
use d1lc::{solve, solve_random_trial, SolveOptions, SolveResult};
use std::time::Instant;

/// Multiplier on `log2(n)` bits used as the per-edge bandwidth budget
/// when normalizing rounds (`B = SimConfig::congest_bits(n, 2)`).
pub const BANDWIDTH_MULTIPLIER: u64 = 2;

/// Which solver a sweep scenario drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The full Theorem 1 pipeline ([`d1lc::solve`]).
    Pipeline,
    /// The pipeline with the §5 uniform ACD (`uniform_acd = true`).
    UniformPipeline,
    /// The classical `O(log n)` random-trial baseline
    /// ([`d1lc::solve_random_trial`]).
    Baseline,
}

impl Algorithm {
    /// Stable label used in JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Pipeline => "d1lc-pipeline",
            Algorithm::UniformPipeline => "d1lc-pipeline-uniform",
            Algorithm::Baseline => "random-trial-baseline",
        }
    }

    fn run(self, inst: &Instance, seed: u64, threads: usize) -> SolveResult {
        let opts = SolveOptions {
            uniform_acd: self == Algorithm::UniformPipeline,
            sim: SimConfig {
                threads,
                ..SimConfig::default()
            },
            ..SolveOptions::seeded(seed)
        };
        match self {
            Algorithm::Baseline => {
                solve_random_trial(&inst.graph, &inst.lists, opts).expect("baseline solve")
            }
            _ => solve(&inst.graph, &inst.lists, opts).expect("pipeline solve"),
        }
    }
}

/// A metric the claim checker can fit against a growth form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Total CONGEST rounds of the solve.
    Rounds,
    /// Largest per-edge per-round bit load anywhere in the solve.
    ///
    /// Noisy as a claim metric: the engine runs in tracking mode and a
    /// few passes (e.g. the ACD similarity sketches) ship one
    /// multi-round payload atomically, so a single rare sketch steps the
    /// max by 16× on one seed. The splitting cost is accounted exactly by
    /// `normalized_rounds`; bandwidth claims fit [`Metric::P99EdgeBits`]
    /// instead.
    MaxEdgeBits,
    /// 99th-percentile per-round maximum edge load — the typical round's
    /// bandwidth requirement, robust to one-off atomic payloads.
    P99EdgeBits,
}

impl Metric {
    /// Stable label used in JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Rounds => "rounds",
            Metric::MaxEdgeBits => "max-edge-bits",
            Metric::P99EdgeBits => "p99-edge-bits",
        }
    }
}

/// Declarative description of one sweep: graph family × scale ladder ×
/// algorithm × seed set × thread count, plus the paper claims to check.
pub struct SweepSpec {
    /// Graph-family label (matches the [`Instance::name`] the constructor
    /// produces).
    pub family: &'static str,
    /// Instance constructor `(n, seed) -> Instance`.
    pub make: fn(usize, u64) -> Instance,
    /// Which solver to drive.
    pub algorithm: Algorithm,
    /// The size ladder per scale (see [`graphs::gen::pow2_ladder`]).
    pub ladder: fn(Scale) -> Vec<usize>,
    /// Seed set per scale (every cell is run once per seed).
    pub seeds: fn(Scale) -> Vec<u64>,
    /// Engine worker threads (results are thread-count invariant; wall
    /// time is not).
    pub threads: usize,
    /// Paper claims to check against the aggregated per-`n` means.
    pub claims: &'static [(Metric, Form)],
}

/// One `(n, seed)` measurement.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Instance size.
    pub n: usize,
    /// Instance/solver seed.
    pub seed: u64,
    /// Total CONGEST rounds.
    pub rounds: u64,
    /// Rounds normalized to the `B = 2·log2(n)`-bit budget.
    pub normalized_rounds: u64,
    /// The bandwidth budget used for normalization, in bits.
    pub bandwidth: u64,
    /// Largest per-edge per-round load (bits).
    pub max_edge_bits: u64,
    /// Median per-round maximum edge load (bits).
    pub p50_edge_bits: u64,
    /// 99th-percentile per-round maximum edge load (bits).
    pub p99_edge_bits: u64,
    /// Wall-clock seconds for the solve (the only non-deterministic
    /// field; reports at quick scale omit it).
    pub wall_seconds: f64,
    /// Rounds per pipeline phase, in execution order.
    pub phases: Vec<(String, u64)>,
}

/// A sweep's full outcome: every cell plus the claim-check verdicts.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// All cells, ladder-major then seed-major order.
    pub cells: Vec<SweepCell>,
    /// Claim checks against the per-`n` means.
    pub checks: Vec<ClaimCheck>,
}

impl SweepOutcome {
    /// Per-`n` means of a metric across seeds, in ladder order — the
    /// points the claim checker fits.
    pub fn mean_points(&self, metric: Metric) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = Vec::new();
        let mut sizes: Vec<usize> = self.cells.iter().map(|c| c.n).collect();
        sizes.dedup();
        for n in sizes {
            let vals: Vec<f64> = self
                .cells
                .iter()
                .filter(|c| c.n == n)
                .map(|c| match metric {
                    Metric::Rounds => c.rounds as f64,
                    Metric::MaxEdgeBits => c.max_edge_bits as f64,
                    Metric::P99EdgeBits => c.p99_edge_bits as f64,
                })
                .collect();
            points.push((n as f64, crate::table::mean(&vals)));
        }
        points
    }
}

/// Run every `(n, seed)` cell of `spec` at `scale` and check its claims.
pub fn run_sweep(spec: &SweepSpec, scale: Scale) -> SweepOutcome {
    let mut cells = Vec::new();
    for n in (spec.ladder)(scale) {
        for seed in (spec.seeds)(scale) {
            let inst = (spec.make)(n, seed);
            let start = Instant::now();
            let result = spec.algorithm.run(&inst, seed, spec.threads);
            let wall_seconds = start.elapsed().as_secs_f64();
            let bandwidth = SimConfig::congest_bits(n, BANDWIDTH_MULTIPLIER);
            let load = result.log.edge_load();
            cells.push(SweepCell {
                n,
                seed,
                rounds: result.rounds(),
                normalized_rounds: result.normalized_rounds(bandwidth),
                bandwidth,
                max_edge_bits: load.max(),
                p50_edge_bits: load.percentile(0.5),
                p99_edge_bits: load.percentile(0.99),
                wall_seconds,
                phases: result.phase_breakdown(),
            });
        }
    }
    let outcome = SweepOutcome {
        cells,
        checks: Vec::new(),
    };
    let checks = spec
        .claims
        .iter()
        .map(|&(metric, form)| check_growth(metric.label(), form, &outcome.mean_points(metric)))
        .collect();
    SweepOutcome { checks, ..outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::Verdict;
    use crate::workloads::gnp_d1c;

    fn tiny_spec(algorithm: Algorithm) -> SweepSpec {
        SweepSpec {
            family: "gnp-d1c",
            make: gnp_d1c,
            algorithm,
            ladder: |_| vec![64, 128],
            seeds: |_| vec![1, 2],
            threads: 1,
            claims: &[
                (Metric::Rounds, Form::LogN),
                (Metric::MaxEdgeBits, Form::LogN),
            ],
        }
    }

    #[test]
    fn sweep_covers_ladder_times_seeds() {
        let out = run_sweep(&tiny_spec(Algorithm::Pipeline), Scale::Quick);
        assert_eq!(out.cells.len(), 4);
        assert_eq!(out.checks.len(), 2);
        for c in &out.cells {
            assert!(c.rounds > 0);
            assert!(c.max_edge_bits >= c.p99_edge_bits);
            assert!(c.p99_edge_bits >= c.p50_edge_bits);
            assert!(c.normalized_rounds >= c.rounds);
            assert_eq!(
                c.phases.iter().map(|(_, r)| r).sum::<u64>(),
                c.rounds,
                "phase breakdown must cover every round"
            );
        }
        let pts = out.mean_points(Metric::Rounds);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 64.0);
    }

    #[test]
    fn sweep_cells_are_deterministic_given_seed() {
        let spec = tiny_spec(Algorithm::Baseline);
        let a = run_sweep(&spec, Scale::Quick);
        let b = run_sweep(&spec, Scale::Quick);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.rounds, y.rounds);
            assert_eq!(x.max_edge_bits, y.max_edge_bits);
            assert_eq!(x.phases, y.phases);
        }
        // Baseline rounds on a 64..128 ladder are trivially within the
        // O(log n) envelope.
        assert_eq!(a.checks[0].verdict, Verdict::Pass, "{}", a.checks[0].detail);
    }
}
