//! Experiments E4–E8: the §3 estimation and detection primitives.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, f3, mean, quantile, Table};
use crate::workloads::Scale;
use congest::SimConfig;
use estimate::{
    estimate_similarity, estimate_sparsity, exact_intersection, find_four_cycle_rich_wedges,
    find_triangle_rich_edges, joint_sample, SimilarityScheme,
};
use graphs::{analysis, gen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registry entries for this module (E4–E8).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        TableScenario::boxed(
            "E4",
            "EstimateSimilarity accuracy",
            "Lemma 2: estimate within eps*max(|Su|,|Sv|) w.p. 1-nu",
            e4_similarity,
        ),
        TableScenario::boxed(
            "E5",
            "JointSample agreement",
            "Lemma 3: both parties output the same element w.p. 1-5eps/4-nu",
            e5_joint_sample,
        ),
        TableScenario::boxed(
            "E6",
            "EstimateSparsity accuracy",
            "Lemmas 4-5: global estimate within eps*Delta, local within eps*d_v",
            e6_sparsity,
        ),
        TableScenario::boxed(
            "E7",
            "Local triangle finding",
            "Theorem 2: each edge on >= eps*Delta triangles detected w.h.p.",
            e7_triangles,
        ),
        TableScenario::boxed(
            "E8",
            "Local four-cycle finding",
            "Theorem 3: each wedge on >= eps*Delta four-cycles detected w.h.p.",
            e8_four_cycles,
        ),
    ]
}

/// E4 — Lemma 2: `EstimateSimilarity` accuracy and message cost.
pub fn e4_similarity(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 — EstimateSimilarity accuracy (Lemma 2)",
        "Estimate within ε·max(|Su|,|Sv|) w.p. 1−ν, O(1) messages of O(ε⁻⁴log(1/ν)+…) bits",
    );
    t.columns([
        "eps",
        "overlap",
        "|S|",
        "mean-err/εmax",
        "p95-err/εmax",
        "within-ε",
        "bits",
    ]);
    let size = 600usize;
    for eps in [0.5, 0.25, 0.125] {
        let scheme = SimilarityScheme::practical(eps);
        for overlap in [0.0, 0.25, 0.5, 1.0] {
            let shift = ((1.0 - overlap) * size as f64) as u64;
            let su: Vec<u64> = (0..size as u64).collect();
            let sv: Vec<u64> = (shift..shift + size as u64).collect();
            let truth = exact_intersection(&su, &sv) as f64;
            let bound = eps * size as f64;
            let mut errs = Vec::new();
            let mut within = 0usize;
            let mut bits = 0u64;
            for trial in 0..scale.trials() {
                let mut rng = StdRng::seed_from_u64(trial * 31 + 5);
                let out = estimate_similarity(&scheme, &su, &sv, 17, &mut rng);
                let err = (out.estimate - truth).abs();
                if err <= bound {
                    within += 1;
                }
                errs.push(err / bound);
                bits = out.tally.total_bits();
            }
            t.row([
                f3(eps),
                f2(overlap),
                size.to_string(),
                f2(mean(&errs)),
                f2(quantile(&errs, 0.95)),
                format!("{within}/{}", scale.trials()),
                bits.to_string(),
            ]);
        }
    }
    t
}

/// E5 — Lemma 3: `JointSample` agreement probability.
pub fn e5_joint_sample(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5 — JointSample agreement (Lemma 3)",
        "When |Su∩Sv| ≥ ε·max sizes, both parties output the same element w.p. 1−5ε/4−ν",
    );
    t.columns([
        "eps",
        "overlap",
        "agree-rate",
        "lemma-bound",
        "in-intersection",
    ]);
    let size = 500usize;
    for eps in [0.25, 0.125] {
        let scheme = SimilarityScheme::practical(eps);
        for overlap in [0.25, 0.5, 1.0] {
            let shift = ((1.0 - overlap) * size as f64) as u64;
            let su: Vec<u64> = (0..size as u64).collect();
            let sv: Vec<u64> = (shift..shift + size as u64).collect();
            let mut agreements = 0usize;
            let mut in_inter = 0usize;
            for trial in 0..scale.trials() {
                let mut rng = StdRng::seed_from_u64(trial * 17 + 3);
                let out = joint_sample(&scheme, &su, &sv, 21, &mut rng);
                if out.agreed() {
                    agreements += 1;
                    let x = out.u_out.expect("agreed implies output");
                    if su.binary_search(&x).is_ok() && sv.binary_search(&x).is_ok() {
                        in_inter += 1;
                    }
                }
            }
            let bound = (1.0 - 1.25 * eps - 0.05).max(0.0);
            t.row([
                f3(eps),
                f2(overlap),
                f2(agreements as f64 / scale.trials() as f64),
                f2(bound),
                format!("{in_inter}/{agreements}"),
            ]);
        }
    }
    t
}

/// E6 — Lemmas 4–5: sparsity estimation accuracy (global and local).
pub fn e6_sparsity(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6 — EstimateSparsity accuracy (Lemmas 4–5)",
        "Global estimate within ε·Δ; local (with the high-degree-neighbor tweak) within ε·d_v",
    );
    t.columns([
        "graph",
        "eps",
        "metric",
        "mean-err/bound",
        "p95-err/bound",
        "rounds",
    ]);
    let trials = (scale.trials() / 10).max(2);
    for (gname, g) in [
        ("gnp(160,.15)", gen::gnp(160, 0.15, 4)),
        ("blend", gen::clique_blend(Default::default(), 5)),
        ("hub-spokes", gen::hub_and_spokes(4, 30, 6)),
    ] {
        let eps = 0.25;
        let scheme = SimilarityScheme::practical(eps);
        let delta = g.max_degree() as f64;
        let mut gerrs = Vec::new();
        let mut lerrs = Vec::new();
        let mut rounds = 0u64;
        for trial in 0..trials {
            let (est, rep) = estimate_sparsity(&g, scheme, SimConfig::seeded(trial), 31 + trial)
                .expect("sparsity run");
            rounds = rep.rounds;
            for v in 0..g.n() {
                let vid = v as graphs::NodeId;
                let dv = g.degree(vid) as f64;
                gerrs.push(
                    (est.global[v] - analysis::global_sparsity(&g, vid)).abs() / (eps * delta),
                );
                if dv > 0.0 {
                    // The Lemma 5 guarantee only covers nodes without many
                    // much-higher-degree neighbors; report all nodes but
                    // normalize by the local bound.
                    lerrs.push(
                        (est.local[v] - analysis::local_sparsity(&g, vid)).abs() / (eps * dv),
                    );
                }
            }
        }
        t.row([
            gname.to_string(),
            f3(eps),
            "global".into(),
            f2(mean(&gerrs)),
            f2(quantile(&gerrs, 0.95)),
            rounds.to_string(),
        ]);
        t.row([
            gname.to_string(),
            f3(eps),
            "local".into(),
            f2(mean(&lerrs)),
            f2(quantile(&lerrs, 0.95)),
            rounds.to_string(),
        ]);
    }
    t
}

/// E7 — Theorem 2: local triangle detection.
pub fn e7_triangles(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7 — Local triangle finding (Theorem 2)",
        "Each edge on ≥ εΔ triangles is detected w.h.p. in O(ε⁻⁴) rounds",
    );
    t.columns([
        "planted-tris",
        "eps",
        "detect-rate",
        "false-flags/edges",
        "rounds",
    ]);
    let trials = (scale.trials() / 5).max(2);
    for planted in [10usize, 20, 40] {
        let eps = 0.5;
        let mut detected = 0usize;
        let mut false_flags = 0usize;
        let mut edges = 0usize;
        let mut rounds = 0u64;
        for trial in 0..trials {
            let g = gen::triangle_rich(160, planted, 0.03, 100 + trial);
            let (rep, run) = find_triangle_rich_edges(
                &g,
                eps,
                SimilarityScheme::practical(0.25),
                SimConfig::seeded(trial),
                trial * 3 + 1,
            )
            .expect("triangle run");
            rounds = run.rounds;
            if rep.flagged.contains(&(0, 1)) {
                detected += 1;
            }
            edges += g.m();
            // Edges other than the planted one lie on ~0 triangles.
            false_flags += rep
                .flagged
                .iter()
                .filter(|&&(u, v)| (u, v) != (0, 1))
                .count();
        }
        t.row([
            planted.to_string(),
            f2(eps),
            format!("{detected}/{trials}"),
            format!("{false_flags}/{edges}"),
            rounds.to_string(),
        ]);
    }
    t
}

/// E8 — Theorem 3: local four-cycle detection.
pub fn e8_four_cycles(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8 — Local four-cycle finding (Theorem 3)",
        "Each wedge on ≥ εΔ four-cycles is detected w.h.p. in O(ε⁻⁴) rounds",
    );
    t.columns([
        "planted-C4s",
        "eps",
        "detect-rate",
        "false-flags/wedges",
        "rounds",
    ]);
    let trials = (scale.trials() / 5).max(2);
    for planted in [10usize, 25, 40] {
        let eps = 0.5;
        let mut detected = 0usize;
        let mut false_flags = 0usize;
        let mut wedges = 0usize;
        let mut rounds = 0u64;
        for trial in 0..trials {
            let g = gen::four_cycle_rich(160, planted, 0.03, 200 + trial);
            let (rep, run) =
                find_four_cycle_rich_wedges(&g, eps, SimConfig::seeded(trial), trial * 7 + 2)
                    .expect("four-cycle run");
            rounds = run.rounds;
            if rep.flagged.contains(&(0, 2, 3)) {
                detected += 1;
            }
            wedges += rep.wedges.iter().map(Vec::len).sum::<usize>();
            false_flags += rep
                .flagged
                .iter()
                .filter(|&&(c, a, b)| (c, a, b) != (0, 2, 3))
                .count();
        }
        t.row([
            planted.to_string(),
            f2(eps),
            format!("{detected}/{trials}"),
            format!("{false_flags}/{wedges}"),
            rounds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_runs_quick() {
        assert!(!e4_similarity(Scale::Quick).is_empty());
    }

    #[test]
    fn e7_runs_quick() {
        assert!(!e7_triangles(Scale::Quick).is_empty());
    }
}
