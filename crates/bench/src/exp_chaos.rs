//! E0e — chaos sweep: full pipeline solves under deterministic fault
//! injection.
//!
//! PR 7 puts a seeded fault layer ([`congest::FaultPlan`]) between the
//! mailbox plane's send and delivery phases: bundles are dropped,
//! delayed into later rounds, duplicated, or truncated to the bandwidth
//! cap, with every fate a pure hash of `(pass seed, plan, edge, round)`.
//! E0e sweeps drop rate × delay × duplication over the S1 workload
//! family and, per (n, plan, threads) cell, reports how the solve
//! degrades: rounds spent, central repairs, fault-induced conflicts the
//! pre-repair sweep broke, and the raw fault counters (dropped, delayed,
//! duplicated bundles; starved receivers).
//!
//! The run **asserts**, before any timing:
//!
//! * every faulty solve still yields a **proper coloring** (the
//!   detect-and-repair guarantee, at every drop rate);
//! * every plan's outcome is **byte-identical** across engine modes
//!   (session, per-pass sweep, legacy reference) and threads {1, 2, 8}
//!   — same coloring, same per-pass log, fault counters included;
//! * the `none` arm is byte-identical to a solve with a default
//!   (fault-free) `SimConfig` — an inactive plan costs nothing and
//!   changes nothing.
//!
//! `BENCH_7.json` at the repo root is the committed full-scale snapshot.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Instance, Scale};
use congest::{FaultPlan, SimConfig};
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use graphs::palette::check_coloring;
use std::time::Instant;

/// Registry entries for this module (E0e).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0e",
        "Chaos sweep: pipeline solves under deterministic fault injection",
        "Every faulty solve stays a proper coloring and is byte-identical across engine \
         modes and threads {1, 2, 8}; FaultPlan::none() reproduces the fault-free solve \
         bit for bit; rounds/repairs degrade gracefully as drop/delay/dup rates rise",
        e0e_chaos,
    )]
}

/// Solve seed (a member of the S1 sweep's seed set, matching E0b).
pub const SEED: u64 = 1;

/// Per-pass round cap for every chaos arm. Heavily faulted passes stall
/// waiting for lost replies; the cap bounds them (recovery then happens
/// in the repair sweep), and it is applied to the fault-free anchor too
/// so the `none` identity assertion compares equal configs.
const MAX_ROUNDS: u64 = 400;

/// The swept fault plans, mildest to harshest.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("drop 0.1", FaultPlan::lossy(0.1)),
        ("drop 0.3", FaultPlan::lossy(0.3)),
        (
            "drop 0.1 delay 0.2x3",
            FaultPlan::lossy(0.1).with_delay(0.2, 3),
        ),
        (
            "drop 0.3 delay 0.3x3 dup 0.2",
            FaultPlan::lossy(0.3).with_delay(0.3, 3).with_dup(0.2),
        ),
    ]
}

/// One timed solve under `plan`; returns wall seconds and the
/// (deterministic) result.
fn chaos_solve(
    inst: &Instance,
    engine: EngineMode,
    threads: usize,
    plan: FaultPlan,
) -> (f64, SolveResult) {
    let opts = SolveOptions {
        engine,
        sim: SimConfig {
            threads,
            fault: plan,
            max_rounds: MAX_ROUNDS,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(SEED)
    };
    let start = Instant::now();
    let result = solve(&inst.graph, &inst.lists, opts).expect("chaos solve completes");
    (start.elapsed().as_secs_f64(), result)
}

/// E0e — drop × delay × dup sweep with cross-engine identity witness.
pub fn e0e_chaos(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![128, 256],
        Scale::Full => vec![256, 1024],
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0e — chaos sweep, d1lc solve on gnp-window (S1 family) under seeded fault \
             plans, seed {SEED}, max {MAX_ROUNDS} rounds/pass (host cores={cores})",
        ),
        "Proper colorings and byte-identical transcripts under every plan, engine mode, \
         and thread count; repairs absorb what the faulty network loses",
    );
    t.columns([
        "n",
        "plan",
        "threads",
        "wall ms",
        "rounds",
        "repairs",
        "conflicts",
        "dropped",
        "delayed",
        "dup'd",
        "starved",
    ]);
    for n in sizes {
        let inst = workloads::gnp_window(n, SEED);
        for (label, plan) in plans() {
            // Witness arm: the session engine at 1 thread.
            let (_, witness) = chaos_solve(&inst, EngineMode::Session, 1, plan);
            assert_eq!(
                check_coloring(&inst.graph, &inst.lists, &witness.coloring),
                Ok(()),
                "E0e: improper coloring under plan '{label}' at n={n}"
            );
            if !plan.is_active() {
                // An inactive plan must be invisible: bit-for-bit the
                // fault-free engine (same config minus the plan field).
                let baseline = {
                    let opts = SolveOptions {
                        sim: SimConfig {
                            max_rounds: MAX_ROUNDS,
                            ..SimConfig::default()
                        },
                        ..SolveOptions::seeded(SEED)
                    };
                    solve(&inst.graph, &inst.lists, opts).expect("fault-free solve")
                };
                assert_eq!(
                    witness.coloring, baseline.coloring,
                    "E0e: FaultPlan::none() changed the coloring at n={n}"
                );
                assert_eq!(
                    witness.log.passes(),
                    baseline.log.passes(),
                    "E0e: FaultPlan::none() changed the pass log at n={n}"
                );
            }
            let check = |arm: &str, result: &SolveResult| {
                assert_eq!(
                    witness.coloring, result.coloring,
                    "E0e: coloring diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    witness.log.passes(),
                    result.log.passes(),
                    "E0e: pass log diverged ({arm}, plan '{label}', n={n})"
                );
                assert_eq!(
                    witness.stats, result.stats,
                    "E0e: stats diverged ({arm}, plan '{label}', n={n})"
                );
            };
            // Generational identity: the per-pass sweep and the legacy
            // reference plane draw the same fault fates bundle for
            // bundle (one row each; the reference plane is slow).
            let (_, per_pass) = chaos_solve(&inst, EngineMode::PerPass, 1, plan);
            check("per-pass t=1", &per_pass);
            let (_, reference) = chaos_solve(&inst, EngineMode::Reference, 1, plan);
            check("reference t=1", &reference);
            for threads in [1usize, 2, 8] {
                let (wall, result) = chaos_solve(&inst, EngineMode::Session, threads, plan);
                check(&format!("session t={threads}"), &result);
                let faults = result.log.fault_totals();
                t.row([
                    n.to_string(),
                    label.into(),
                    threads.to_string(),
                    f2(wall * 1e3),
                    result.rounds().to_string(),
                    result.stats.repairs.to_string(),
                    result.stats.fault_conflicts.to_string(),
                    faults.dropped.to_string(),
                    faults.delayed.to_string(),
                    faults.duplicated.to_string(),
                    result.log.starved_union().len().to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The swept plans cover the advertised axes and stay distinct.
    #[test]
    fn plans_cover_the_axes() {
        let ps = plans();
        assert_eq!(ps[0].1, FaultPlan::none());
        assert!(!ps[0].1.is_active());
        assert!(ps[1..].iter().all(|(_, p)| p.is_active()));
        for window in ps.windows(2) {
            assert_ne!(window[0].1, window[1].1, "duplicate plan in the sweep");
        }
        assert!(ps.iter().any(|(_, p)| p.delay_q > 0), "no delay arm");
        assert!(ps.iter().any(|(_, p)| p.dup_q > 0), "no duplication arm");
    }

    /// A tiny chaos cell runs end to end: proper coloring, faults
    /// actually recorded, and the session/per-pass arms agree.
    #[test]
    fn chaos_cell_smoke() {
        let inst = workloads::gnp_window(96, SEED);
        let plan = FaultPlan::lossy(0.3).with_delay(0.2, 2);
        let (_, session) = chaos_solve(&inst, EngineMode::Session, 2, plan);
        assert_eq!(
            check_coloring(&inst.graph, &inst.lists, &session.coloring),
            Ok(())
        );
        assert!(session.log.fault_totals().dropped > 0, "no drops recorded");
        let (_, per_pass) = chaos_solve(&inst, EngineMode::PerPass, 1, plan);
        assert_eq!(session.coloring, per_pass.coloring);
        assert_eq!(session.log.passes(), per_pass.log.passes());
    }
}
