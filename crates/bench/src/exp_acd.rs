//! Experiments E13–E15: almost-clique decomposition quality, slack
//! generation, and leader selection.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, f3, mean, Table};
use crate::workloads::Scale;
use congest::SimConfig;
use d1lc::acd::compute_acd;
use d1lc::driver::Driver;
use d1lc::leader::{leader_score, select_leaders};
use d1lc::trycolor::TryColorPass;
use d1lc::wire::ColorCodec;
use d1lc::{AcdClass, NodeState, Palette, ParamProfile};
use graphs::{analysis, gen, Graph, NodeId};

/// Registry entries for this module (E13–E15).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        TableScenario::boxed(
            "E13",
            "Almost-clique decomposition quality",
            "Section 4.2 / Definition 6: planted clique members classify dense",
            e13_acd,
        ),
        TableScenario::boxed(
            "E14",
            "GenerateSlack vs sparsity",
            "Proposition 2: sparser neighborhoods gain more permanent slack",
            e14_slack,
        ),
        TableScenario::boxed(
            "E15",
            "Leader selection quality",
            "Appendix D.1, Lemma 12: the elected leader attains the clique minimum score",
            e15_leader,
        ),
    ]
}

fn fresh_active(g: &Graph, extra: usize) -> Vec<NodeState> {
    let profile = ParamProfile::laptop();
    (0..g.n())
        .map(|v| {
            let d = g.degree(v as NodeId);
            let list: Vec<u64> = (0..(d + 1 + extra) as u64).collect();
            let mut st = NodeState::new(
                v as NodeId,
                Palette::new(list),
                ColorCodec::new(&profile, 1, g.n(), 24, d),
                d,
            );
            st.active = true;
            st.neighbor_active = vec![true; d];
            st
        })
        .collect()
}

/// E13 — §4.2 / Definition 6: ACD classification quality on planted
/// instances.
pub fn e13_acd(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 — Almost-clique decomposition quality (§4.2, Def. 6)",
        "Planted clique members classify dense with consistent clique ids; the sparse background stays non-dense",
    );
    t.columns([
        "cliques×size",
        "removal",
        "dense-recall",
        "clique-agreement",
        "background-dense-rate",
        "rounds",
    ]);
    let trials = (scale.trials() / 10).max(2);
    for (cliques, size, removal) in [(3usize, 20usize, 0.02), (3, 20, 0.10), (4, 16, 0.05)] {
        let mut recall = Vec::new();
        let mut agreement = Vec::new();
        let mut bg_dense = Vec::new();
        let mut rounds = 0u64;
        for trial in 0..trials {
            let (g, truth) = gen::planted_acd(cliques, size, removal, 60, 0.05, 40 + trial);
            let profile = ParamProfile::laptop();
            let mut driver = Driver::new(&g, SimConfig::seeded(trial));
            let states =
                compute_acd(&mut driver, fresh_active(&g, 0), &profile, 3 + trial).unwrap();
            rounds = driver.log.total_rounds();
            let mut dense_hits = 0usize;
            let mut planted = 0usize;
            let mut hub_agree = 0usize;
            let mut bg_hits = 0usize;
            let mut bg = 0usize;
            for (v, tr) in truth.iter().enumerate() {
                match tr {
                    Some(c) => {
                        planted += 1;
                        if states[v].class == AcdClass::Dense {
                            dense_hits += 1;
                            let mate = (*c as usize) * size; // first member
                            if states[v].clique == states[mate].clique {
                                hub_agree += 1;
                            }
                        }
                    }
                    None => {
                        bg += 1;
                        if states[v].class == AcdClass::Dense {
                            bg_hits += 1;
                        }
                    }
                }
            }
            recall.push(dense_hits as f64 / planted.max(1) as f64);
            agreement.push(hub_agree as f64 / dense_hits.max(1) as f64);
            bg_dense.push(bg_hits as f64 / bg.max(1) as f64);
        }
        t.row([
            format!("{cliques}×{size}"),
            f2(removal),
            f3(mean(&recall)),
            f3(mean(&agreement)),
            f3(mean(&bg_dense)),
            rounds.to_string(),
        ]);
    }
    t
}

/// E14 — Proposition 2 / slack generation: slack gained by sparsity
/// bucket.
pub fn e14_slack(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14 — GenerateSlack vs sparsity (Prop. 2 regime)",
        "Sparser neighborhoods gain more permanent slack from one GenerateSlack round",
    );
    t.columns([
        "graph",
        "zeta-bucket",
        "nodes",
        "mean-slack-gain",
        "mean-kappa",
    ]);
    let trials = (scale.trials() / 10).max(2);
    // High participation makes the effect visible at laptop scale; the
    // paper's p_g = 1/10 constant is calibrated for Ω(log² Δ) degrees.
    let pg = 0.5;
    for (gname, g) in [
        ("gnp(200,.1)", gen::gnp(200, 0.1, 9)),
        ("blend", gen::clique_blend(Default::default(), 10)),
    ] {
        let mut by_bucket: Vec<(f64, f64, usize)> = vec![(0.0, 0.0, 0); 3];
        for trial in 0..trials {
            let mut states = fresh_active(&g, 0);
            let mut driver = Driver::new(&g, SimConfig::seeded(500 + trial));
            states = driver
                .run_pass("gs", states, |st| TryColorPass::generate_slack(st, pg))
                .unwrap();
            for (v, st) in states.iter().enumerate() {
                let vid = v as NodeId;
                let dv = g.degree(vid) as f64;
                if dv == 0.0 {
                    continue;
                }
                let zeta = analysis::local_sparsity(&g, vid) / dv; // normalized ζ/d
                let bucket = if zeta < 0.15 {
                    0
                } else if zeta < 0.35 {
                    1
                } else {
                    2
                };
                by_bucket[bucket].0 += f64::from(st.slack_gain);
                by_bucket[bucket].1 += f64::from(st.chroma_slack);
                by_bucket[bucket].2 += 1;
            }
        }
        for (i, label) in ["dense ζ/d<.15", "mid", "sparse ζ/d≥.35"]
            .iter()
            .enumerate()
        {
            let (gain, kappa, count) = by_bucket[i];
            if count == 0 {
                continue;
            }
            t.row([
                gname.to_string(),
                (*label).to_string(),
                (count / trials.max(1) as usize).to_string(),
                f2(gain / count as f64),
                f2(kappa / count as f64),
            ]);
        }
    }
    t
}

/// E15 — Appendix D.1: leader quality (selected score vs true minimum).
pub fn e15_leader(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 — Leader selection quality (App. D.1, Lemma 12)",
        "The elected leader's aggregate e_v+a_v+κ_v is the clique minimum (arg-min aggregation)",
    );
    t.columns([
        "instance",
        "cliques-with-leader",
        "leader-is-argmin",
        "low-slack-cliques",
    ]);
    let trials = (scale.trials() / 10).max(2);
    for (name, cliques, size, removal) in [("tight", 3usize, 16usize, 0.02), ("loose", 3, 16, 0.12)]
    {
        let mut with_leader = 0usize;
        let mut argmin_ok = 0usize;
        let mut low_slack = 0usize;
        let mut total = 0usize;
        for trial in 0..trials {
            let (g, _) = gen::planted_acd(cliques, size, removal, 40, 0.05, 80 + trial);
            let profile = ParamProfile::laptop();
            let mut driver = Driver::new(&g, SimConfig::seeded(trial * 3));
            let states =
                compute_acd(&mut driver, fresh_active(&g, 0), &profile, 7 + trial).unwrap();
            let states = select_leaders(&mut driver, states, &profile, g.max_degree()).unwrap();
            // Group members by clique id.
            let mut hubs: std::collections::BTreeMap<NodeId, Vec<usize>> = Default::default();
            for (v, st) in states.iter().enumerate() {
                if let Some(c) = st.clique {
                    hubs.entry(c).or_default().push(v);
                }
            }
            for (_, members) in hubs {
                if members.len() < 4 {
                    continue;
                }
                total += 1;
                let leader = states[members[0]].leader;
                if leader.is_none() {
                    continue;
                }
                with_leader += 1;
                let leader = leader.expect("checked") as usize;
                let min_score = members
                    .iter()
                    .map(|&v| leader_score(&states[v]))
                    .min()
                    .expect("nonempty");
                if leader_score(&states[leader]) == min_score {
                    argmin_ok += 1;
                }
                if states[members[0]].low_slack_clique {
                    low_slack += 1;
                }
            }
        }
        t.row([
            name.to_string(),
            format!("{with_leader}/{total}"),
            format!("{argmin_ok}/{with_leader}"),
            format!("{low_slack}/{total}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_runs() {
        assert_eq!(e13_acd(Scale::Quick).len(), 3);
    }

    #[test]
    fn e15_runs() {
        assert_eq!(e15_leader(Scale::Quick).len(), 2);
    }
}
