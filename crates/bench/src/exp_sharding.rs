//! E0f — ownership-sharding sweep: the owner/ghost session engine
//! across shard counts {1, 2, 4, 8} × threads {1, 2, 8}.
//!
//! PR 8 partitions the session engine by ownership: each worker owns a
//! contiguous node range plus read-only ghost state for cross-shard
//! neighbors, cross-shard bundles travel through one explicit exchange
//! phase per round, and the per-round barrier budget drops from the
//! legacy 4 waits to 2. E0f sweeps the shard × thread grid over the S1
//! gnp-window workload and reports wall time, rounds, and the measured
//! barrier waits per round.
//!
//! The run **asserts**, before any timing:
//!
//! * every sharded solve is **byte-identical** to the unsharded
//!   single-thread anchor — same proper coloring, same pass log, same
//!   stats — for every (shards, threads) cell;
//! * every pooled cell spends **≤ 2 barrier waits per round** (the
//!   tentpole budget; sequential cells spend 0).
//!
//! Wall-clock caveat: on a 1-core host (the committed snapshots so
//! far), threads > 1 only add synchronization overhead — the sweep
//! records those numbers honestly rather than hiding them; the host
//! core count is in the table title.
//!
//! `BENCH_8.json` at the repo root is the committed full-scale snapshot.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, Table};
use crate::workloads::{self, Instance, Scale};
use congest::{Ctx, Message, Program, Session, SimConfig};
use d1lc::{solve, EngineMode, SolveOptions, SolveResult};
use graphs::palette::check_coloring;
use std::time::Instant;

/// Registry entries for this module (E0f).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![TableScenario::boxed(
        "E0f",
        "Ownership-sharding sweep: owner/ghost session engine over shards × threads",
        "Every sharded solve is byte-identical to the unsharded anchor (proper coloring, \
         same pass log) for shards {1, 2, 4, 8} × threads {1, 2, 8}; pooled cells spend \
         at most 2 barrier waits per round vs the legacy 4; wall numbers are honest \
         1-core measurements when the host has 1 core",
        e0f_sharding,
    )]
}

/// Solve seed (a member of the S1 sweep's seed set, matching E0b/E0e).
pub const SEED: u64 = 1;

/// The swept shard and thread counts.
const SHARDS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 3] = [1, 2, 8];

/// One timed solve at the given shard geometry; deterministic.
fn sharded_solve(inst: &Instance, shards: usize, threads: usize) -> (f64, SolveResult) {
    let opts = SolveOptions {
        engine: EngineMode::Session,
        sim: SimConfig {
            threads,
            shards,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(SEED)
    };
    let start = Instant::now();
    let result = solve(&inst.graph, &inst.lists, opts).expect("sharded solve completes");
    (start.elapsed().as_secs_f64(), result)
}

/// Broadcast heartbeat used to measure the engine's barrier budget.
#[derive(Clone, PartialEq, Debug)]
struct Beat(u32);

impl Message for Beat {
    fn bit_cost(&self) -> u64 {
        24
    }
}

/// Broadcasts every round for a fixed number of rounds, then halts.
struct Flood {
    rounds: u64,
    done: bool,
}

impl Program for Flood {
    type Msg = Beat;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Beat>) {
        if ctx.round() >= self.rounds {
            self.done = true;
            return;
        }
        ctx.broadcast(Beat(ctx.id()));
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Measured barrier waits per round of a clean engine pass at the given
/// geometry (0 on the sequential path, 2 on the pooled owner/ghost
/// protocol — asserted ≤ 2, the tentpole budget).
fn waits_per_round(inst: &Instance, shards: usize, threads: usize) -> f64 {
    let cfg = SimConfig {
        threads,
        shards,
        ..SimConfig::default()
    };
    let mut session: Session<'_, Beat> = Session::new(&inst.graph, cfg);
    let mut programs: Vec<Flood> = (0..inst.graph.n())
        .map(|_| Flood {
            rounds: 16,
            done: false,
        })
        .collect();
    session.run(&mut programs, SEED).expect("flood pass");
    let audit = session.barrier_audit();
    assert!(audit.rounds > 0, "E0f: empty audit");
    assert!(
        audit.round_waits <= 2 * audit.rounds,
        "E0f: barrier budget blown at shards={shards} threads={threads}: \
         {} waits over {} rounds",
        audit.round_waits,
        audit.rounds
    );
    audit.round_waits as f64 / audit.rounds as f64
}

/// E0f — shard × thread sweep with unsharded identity witness.
pub fn e0f_sharding(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![128, 256],
        Scale::Full => vec![256, 1024, 4096],
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut t = Table::new(
        format!(
            "E0f — ownership-sharding sweep, d1lc solve on gnp-window (S1 family), \
             owner/ghost session engine, seed {SEED} (host cores={cores})",
        ),
        "Byte-identical transcripts across every shard × thread cell; ≤2 barrier waits \
         per round on pooled cells (legacy engines: 4); 1-core hosts record the threads>1 \
         overhead honestly",
    );
    t.columns([
        "n",
        "shards",
        "threads",
        "wall ms",
        "rounds",
        "colors",
        "waits/round",
    ]);
    for n in sizes {
        let inst = workloads::gnp_window(n, SEED);
        // Witness arm: the unsharded sequential engine.
        let (_, witness) = sharded_solve(&inst, 0, 1);
        assert_eq!(
            check_coloring(&inst.graph, &inst.lists, &witness.coloring),
            Ok(()),
            "E0f: improper witness coloring at n={n}"
        );
        for shards in SHARDS {
            for threads in THREADS {
                let (wall, result) = sharded_solve(&inst, shards, threads);
                assert_eq!(
                    witness.coloring, result.coloring,
                    "E0f: coloring diverged (shards={shards}, threads={threads}, n={n})"
                );
                assert_eq!(
                    witness.log.passes(),
                    result.log.passes(),
                    "E0f: pass log diverged (shards={shards}, threads={threads}, n={n})"
                );
                assert_eq!(
                    witness.stats, result.stats,
                    "E0f: stats diverged (shards={shards}, threads={threads}, n={n})"
                );
                let waits = waits_per_round(&inst, shards, threads);
                let colors = result
                    .coloring
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .len();
                t.row([
                    n.to_string(),
                    shards.to_string(),
                    threads.to_string(),
                    f2(wall * 1e3),
                    result.rounds().to_string(),
                    colors.to_string(),
                    f2(waits),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sharding cell runs end to end: identical coloring across
    /// geometries and the barrier budget holds.
    #[test]
    fn sharding_cell_smoke() {
        let inst = workloads::gnp_window(96, SEED);
        let (_, anchor) = sharded_solve(&inst, 0, 1);
        assert_eq!(
            check_coloring(&inst.graph, &inst.lists, &anchor.coloring),
            Ok(())
        );
        let (_, sharded) = sharded_solve(&inst, 4, 2);
        assert_eq!(anchor.coloring, sharded.coloring);
        assert_eq!(anchor.log.passes(), sharded.log.passes());
        // Sequential path: no barrier waits, whatever the shard count.
        assert_eq!(waits_per_round(&inst, 4, 1), 0.0);
        // Pooled path: exactly 2 per round.
        assert_eq!(waits_per_round(&inst, 4, 2), 2.0);
    }
}
