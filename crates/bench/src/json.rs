//! Machine-readable experiment output: the `BENCH_*.json` format.
//!
//! The experiments binary mirrors everything it runs into a JSON file
//! (`--json PATH`) so the perf trajectory is diffable across PRs.
//! `BENCH_2.json` at the repo root is the PR 2 snapshot of the
//! engine-plane microbench (schema `bench-v1`); `BENCH_3.json` is the
//! committed full-scale scenario sweep (schema `bench-v2`, which adds the
//! `sweeps` array that feeds the generated `EXPERIMENTS.md`). Both the
//! writer and the reader are hand-rolled: the build environment has no
//! registry access, and the schema is small (documented in DESIGN.md §5).

use crate::claims::ClaimCheck;
use crate::sweep::{SweepCell, SweepOutcome};
use crate::table::Table;
use crate::workloads::Scale;
use std::fmt::Write as _;

/// Schema tag embedded in every emitted file.
pub const SCHEMA: &str = "congest-coloring/bench-v2";

/// One table experiment's result: id, rendered table, wall-clock seconds.
pub struct ExperimentResult {
    /// Experiment id (`E0`, `E1`, …).
    pub id: String,
    /// The result table.
    pub table: Table,
    /// Wall-clock seconds the experiment took end to end.
    pub wall_seconds: f64,
}

/// One sweep scenario's result, ready for serialization.
pub struct SweepRecord {
    /// Scenario id (`S1`, …).
    pub id: String,
    /// Scenario title.
    pub title: String,
    /// The paper claim the scenario exercises.
    pub claim: String,
    /// Reproduction notes (interpretation of the verdicts; may be empty).
    pub notes: String,
    /// Graph-family label.
    pub family: String,
    /// Algorithm label (see [`crate::sweep::Algorithm::label`]).
    pub algorithm: String,
    /// Engine worker threads the sweep ran with.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Cells + claim verdicts.
    pub outcome: SweepOutcome,
}

impl SweepRecord {
    /// Assemble a record from a sweep scenario's metadata and its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no [`crate::sweep::SweepSpec`] (it is not a sweep).
    pub fn from_scenario(
        scenario: &dyn crate::Scenario,
        wall_seconds: f64,
        outcome: SweepOutcome,
    ) -> Self {
        let spec = scenario.sweep_spec().expect("a sweep scenario");
        SweepRecord {
            id: scenario.id().to_string(),
            title: scenario.title().to_string(),
            claim: scenario.claim().to_string(),
            notes: scenario.notes().to_string(),
            family: spec.family.to_string(),
            algorithm: spec.algorithm.label().to_string(),
            threads: spec.threads,
            wall_seconds,
            outcome,
        }
    }
}

/// Escape a string for a JSON string literal (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", cells.join(","))
}

fn cell_json(c: &SweepCell) -> String {
    let phases: Vec<String> = c
        .phases
        .iter()
        .map(|(name, rounds)| format!("[\"{}\",{rounds}]", escape(name)))
        .collect();
    format!(
        "{{\"n\":{},\"seed\":{},\"rounds\":{},\"normalized_rounds\":{},\"bandwidth\":{},\
         \"max_edge_bits\":{},\"p50_edge_bits\":{},\"p99_edge_bits\":{},\"wall_seconds\":{},\
         \"phases\":[{}]}}",
        c.n,
        c.seed,
        c.rounds,
        c.normalized_rounds,
        c.bandwidth,
        c.max_edge_bits,
        c.p50_edge_bits,
        c.p99_edge_bits,
        format_seconds(c.wall_seconds),
        phases.join(","),
    )
}

fn check_json(c: &ClaimCheck) -> String {
    format!(
        "{{\"metric\":\"{}\",\"form\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\"}}",
        escape(&c.metric),
        escape(&c.form),
        c.verdict.tag(),
        escape(&c.detail),
    )
}

/// Render table experiments and sweep scenarios as a `bench-v2` JSON
/// document.
///
/// All table cells stay strings (they are already formatted for humans);
/// counters are JSON integers and wall-clock numbers JSON floats.
///
/// # Example
///
/// ```
/// use bench::json::{render, ExperimentResult, SCHEMA};
/// use bench::{Scale, Table};
///
/// let mut t = Table::new("E0 — demo", "claim \"x\"");
/// t.columns(["n", "rounds"]);
/// t.row(["256", "42"]);
/// let doc = render(
///     Scale::Quick,
///     &[ExperimentResult { id: "E0".into(), table: t, wall_seconds: 0.25 }],
///     &[],
/// );
/// assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
/// assert!(doc.contains(SCHEMA));
/// assert!(doc.contains("claim \\\"x\\\""));
/// assert!(doc.contains("\"wall_seconds\":0.25"));
/// assert!(bench::json::parse(&doc).is_ok());
/// ```
pub fn render(scale: Scale, results: &[ExperimentResult], sweeps: &[SweepRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    out.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"id\":\"{}\",\"title\":\"{}\",\"claim\":\"{}\",\"wall_seconds\":{},",
            escape(&r.id),
            escape(r.table.title()),
            escape(r.table.claim()),
            format_seconds(r.wall_seconds),
        );
        let _ = write!(out, "\"columns\":{},", string_array(r.table.column_names()));
        out.push_str("\"rows\":[");
        for (j, row) in r.table.rows().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&string_array(row));
        }
        out.push_str("]}");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"id\":\"{}\",\"title\":\"{}\",\"claim\":\"{}\",\"notes\":\"{}\",\"family\":\"{}\",\
             \"algorithm\":\"{}\",\"threads\":{},\"wall_seconds\":{},",
            escape(&s.id),
            escape(&s.title),
            escape(&s.claim),
            escape(&s.notes),
            escape(&s.family),
            escape(&s.algorithm),
            s.threads,
            format_seconds(s.wall_seconds),
        );
        out.push_str("\n     \"cells\":[\n");
        for (j, c) in s.outcome.cells.iter().enumerate() {
            let sep = if j + 1 < s.outcome.cells.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "      {}{sep}", cell_json(c));
        }
        out.push_str("     ],\n     \"checks\":[\n");
        for (j, c) in s.outcome.checks.iter().enumerate() {
            let sep = if j + 1 < s.outcome.checks.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "      {}{sep}", check_json(c));
        }
        out.push_str("     ]}");
        if i + 1 < sweeps.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Format seconds with enough precision for microbenchmarks, trimming
/// trailing zeros so snapshots stay diff-friendly.
fn format_seconds(s: f64) -> String {
    let mut text = format!("{s:.6}");
    while text.ends_with('0') {
        text.pop();
    }
    if text.ends_with('.') {
        text.push('0');
    }
    text
}

/// A parsed JSON value (the reader half of the `BENCH_*.json` format).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, for arrays (empty slice otherwise).
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric content as an unsigned integer (truncating), if a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|x| x as u64)
    }
}

/// Parse a JSON document.
///
/// Supports exactly the constructs the `BENCH_*.json` writers emit (all
/// of standard JSON except `\uXXXX` surrogate pairs, which decode as two
/// scalar values).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input, including
/// trailing garbage after the top-level value.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("malformed number '{text}' at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| "invalid utf-8 in string".to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| "invalid utf-8 in string".to_string())?,
                );
                *pos += 1;
                let escape_code = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escape_code {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::{ClaimCheck, Verdict};

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn seconds_trim_trailing_zeros() {
        assert_eq!(format_seconds(0.25), "0.25");
        assert_eq!(format_seconds(1.0), "1.0");
        assert_eq!(format_seconds(0.000001), "0.000001");
    }

    #[test]
    fn renders_multiple_experiments_as_valid_shape() {
        let mut a = Table::new("E0", "plane");
        a.columns(["x"]);
        a.row(["1"]);
        let mut b = Table::new("E1", "rounds");
        b.columns(["y"]);
        let doc = render(
            Scale::Full,
            &[
                ExperimentResult {
                    id: "E0".into(),
                    table: a,
                    wall_seconds: 1.5,
                },
                ExperimentResult {
                    id: "E1".into(),
                    table: b,
                    wall_seconds: 0.1,
                },
            ],
            &[],
        );
        assert_eq!(doc.matches("\"id\":").count(), 2);
        assert!(doc.contains("\"scale\": \"Full\""));
        assert!(doc.contains("\"rows\":[[\"1\"]]"));
        assert!(doc.contains("\"rows\":[]"));
        let parsed = parse(&doc).expect("writer output parses");
        assert_eq!(parsed.get("experiments").unwrap().items().len(), 2);
        assert_eq!(parsed.get("sweeps").unwrap().items().len(), 0);
    }

    fn demo_sweep() -> SweepRecord {
        SweepRecord {
            id: "S1".into(),
            title: "demo".into(),
            claim: "O(log^5 log n) \"quoted\"".into(),
            notes: "a note".into(),
            family: "gnp-window".into(),
            algorithm: "d1lc-pipeline".into(),
            threads: 2,
            wall_seconds: 3.5,
            outcome: SweepOutcome {
                cells: vec![SweepCell {
                    n: 1024,
                    seed: 1,
                    rounds: 120,
                    normalized_rounds: 150,
                    bandwidth: 22,
                    max_edge_bits: 44,
                    p50_edge_bits: 20,
                    p99_edge_bits: 40,
                    wall_seconds: 0.125,
                    phases: vec![("setup".into(), 2), ("range-1".into(), 118)],
                }],
                checks: vec![ClaimCheck {
                    metric: "rounds".into(),
                    form: "O(log^5 log n)".into(),
                    verdict: Verdict::Pass,
                    detail: "growth x1.00".into(),
                }],
            },
        }
    }

    #[test]
    fn sweep_records_round_trip_through_parse() {
        let doc = render(Scale::Quick, &[], &[demo_sweep()]);
        let parsed = parse(&doc).expect("parses");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("congest-coloring/bench-v2")
        );
        let sweep = &parsed.get("sweeps").unwrap().items()[0];
        assert_eq!(sweep.get("id").and_then(Value::as_str), Some("S1"));
        assert_eq!(sweep.get("threads").and_then(Value::as_u64), Some(2));
        let cell = &sweep.get("cells").unwrap().items()[0];
        assert_eq!(cell.get("rounds").and_then(Value::as_u64), Some(120));
        assert_eq!(
            cell.get("wall_seconds").and_then(Value::as_f64),
            Some(0.125)
        );
        let phases = cell.get("phases").unwrap().items();
        assert_eq!(phases[0].items()[0].as_str(), Some("setup"));
        assert_eq!(phases[1].items()[1].as_u64(), Some(118));
        let check = &sweep.get("checks").unwrap().items()[0];
        assert_eq!(check.get("verdict").and_then(Value::as_str), Some("pass"));
        assert_eq!(
            check.get("form").and_then(Value::as_str),
            Some("O(log^5 log n)")
        );
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".to_string())
        );
        assert_eq!(parse(" [1, 2.5, -3e2] ").unwrap().items().len(), 3);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn committed_bench2_snapshot_still_parses() {
        // BENCH_2.json (schema v1) predates the sweeps array; the reader
        // must keep accepting it.
        let text = include_str!("../../../BENCH_2.json");
        let doc = parse(text).expect("BENCH_2.json parses");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("congest-coloring/bench-v1")
        );
        assert!(doc.get("sweeps").is_none());
        assert_eq!(doc.get("experiments").unwrap().items().len(), 1);
    }
}
