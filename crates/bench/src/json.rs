//! Machine-readable experiment output.
//!
//! The experiments binary can mirror everything it prints into a JSON file
//! (`--json PATH`) so the perf trajectory is diffable across PRs —
//! `BENCH_2.json` at the repo root is the first committed snapshot (the
//! engine-plane microbench E0 at full scale). The writer is hand-rolled:
//! the build environment has no registry access, and the schema is four
//! levels deep.

use crate::table::Table;
use crate::workloads::Scale;
use std::fmt::Write as _;

/// Schema tag embedded in every emitted file.
pub const SCHEMA: &str = "congest-coloring/bench-v1";

/// One experiment's result: id, rendered table, and wall-clock seconds.
pub struct ExperimentResult {
    /// Experiment id (`E0`, `E1`, …).
    pub id: String,
    /// The result table.
    pub table: Table,
    /// Wall-clock seconds the experiment took end to end.
    pub wall_seconds: f64,
}

/// Escape a string for a JSON string literal (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", cells.join(","))
}

/// Render experiment results as a JSON document.
///
/// All table cells stay strings (they are already formatted for humans);
/// wall-clock numbers are JSON numbers.
///
/// # Example
///
/// ```
/// use bench::json::{render, ExperimentResult, SCHEMA};
/// use bench::{Scale, Table};
///
/// let mut t = Table::new("E0 — demo", "claim \"x\"");
/// t.columns(["n", "rounds"]);
/// t.row(["256", "42"]);
/// let doc = render(
///     Scale::Quick,
///     &[ExperimentResult { id: "E0".into(), table: t, wall_seconds: 0.25 }],
/// );
/// assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
/// assert!(doc.contains(SCHEMA));
/// assert!(doc.contains("claim \\\"x\\\""));
/// assert!(doc.contains("\"wall_seconds\":0.25"));
/// ```
pub fn render(scale: Scale, results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    out.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"id\":\"{}\",\"title\":\"{}\",\"claim\":\"{}\",\"wall_seconds\":{},",
            escape(&r.id),
            escape(r.table.title()),
            escape(r.table.claim()),
            format_seconds(r.wall_seconds),
        );
        let _ = write!(out, "\"columns\":{},", string_array(r.table.column_names()));
        out.push_str("\"rows\":[");
        for (j, row) in r.table.rows().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&string_array(row));
        }
        out.push_str("]}");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Format seconds with enough precision for microbenchmarks, trimming
/// trailing zeros so snapshots stay diff-friendly.
fn format_seconds(s: f64) -> String {
    let mut text = format!("{s:.6}");
    while text.ends_with('0') {
        text.pop();
    }
    if text.ends_with('.') {
        text.push('0');
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn seconds_trim_trailing_zeros() {
        assert_eq!(format_seconds(0.25), "0.25");
        assert_eq!(format_seconds(1.0), "1.0");
        assert_eq!(format_seconds(0.000001), "0.000001");
    }

    #[test]
    fn renders_multiple_experiments_as_valid_shape() {
        let mut a = Table::new("E0", "plane");
        a.columns(["x"]);
        a.row(["1"]);
        let mut b = Table::new("E1", "rounds");
        b.columns(["y"]);
        let doc = render(
            Scale::Full,
            &[
                ExperimentResult {
                    id: "E0".into(),
                    table: a,
                    wall_seconds: 1.5,
                },
                ExperimentResult {
                    id: "E1".into(),
                    table: b,
                    wall_seconds: 0.1,
                },
            ],
        );
        assert_eq!(doc.matches("\"id\":").count(), 2);
        assert!(doc.contains("\"scale\": \"Full\""));
        assert!(doc.contains("\"rows\":[[\"1\"]]"));
        assert!(doc.contains("\"rows\":[]"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
