//! Workload construction shared by the experiments binary and the
//! Criterion benches.

use graphs::palette::{degree_plus_one_lists, random_lists, shared_window_lists, ListAssignment};
use graphs::{gen, Graph};

/// Global experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, fast — CI-friendly.
    Quick,
    /// The sizes reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Node-count sweep for the round-complexity experiments.
    pub fn n_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![256, 512, 1024],
            Scale::Full => vec![256, 512, 1024, 2048, 4096, 8192],
        }
    }

    /// Trials per configuration for statistical experiments.
    pub fn trials(self) -> u64 {
        match self {
            Scale::Quick => 20,
            Scale::Full => 100,
        }
    }
}

/// A named D1LC instance.
pub struct Instance {
    /// Instance label for tables.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// The list assignment.
    pub lists: ListAssignment,
}

/// Sparse Erdős–Rényi instance with D1C lists, average degree ≈ 12.
pub fn gnp_d1c(n: usize, seed: u64) -> Instance {
    let p = (12.0 / n as f64).min(0.5);
    let graph = gen::gnp(n, p, seed);
    let lists = degree_plus_one_lists(&graph);
    Instance {
        name: "gnp-d1c",
        graph,
        lists,
    }
}

/// Erdős–Rényi instance with random 48-bit lists (true list coloring,
/// almost no color contention — colors collide only through hashing).
pub fn gnp_lists(n: usize, seed: u64) -> Instance {
    let p = (12.0 / n as f64).min(0.5);
    let graph = gen::gnp(n, p, seed);
    let lists = random_lists(&graph, 48, 0, seed ^ 0x11);
    Instance {
        name: "gnp-lists",
        graph,
        lists,
    }
}

/// Erdős–Rényi instance with heavily overlapping lists from a narrow
/// shared window — maximal color contention, the regime where trial-based
/// coloring actually has to fight.
pub fn gnp_window(n: usize, seed: u64) -> Instance {
    let p = (24.0 / n as f64).min(0.5);
    let graph = gen::gnp(n, p, seed);
    let window = graph.max_degree() as u64 + graph.max_degree() as u64 / 4 + 1;
    let lists = shared_window_lists(&graph, window, seed ^ 0x33);
    Instance {
        name: "gnp-window",
        graph,
        lists,
    }
}

/// Clique blend with shared-window lists: dense machinery plus contention.
pub fn blend_window(n: usize, seed: u64) -> Instance {
    let clique_size = 24.max(n / 40);
    let cliques = (n / 3) / clique_size.max(1);
    let sparse_nodes = n - cliques * clique_size;
    let graph = gen::clique_blend(
        gen::CliqueBlendParams {
            cliques,
            clique_size,
            removal: 0.05,
            sparse_nodes,
            sparse_p: (8.0 / n as f64).min(0.3),
        },
        seed,
    );
    let window = graph.max_degree() as u64 + graph.max_degree() as u64 / 4 + 1;
    let lists = shared_window_lists(&graph, window, seed ^ 0x44);
    Instance {
        name: "blend-window",
        graph,
        lists,
    }
}

/// Planted almost-clique blend with random lists: exercises the dense
/// machinery.
pub fn blend_lists(n: usize, seed: u64) -> Instance {
    let clique_size = 24.max(n / 40);
    let cliques = (n / 3) / clique_size.max(1);
    let sparse_nodes = n - cliques * clique_size;
    let graph = gen::clique_blend(
        gen::CliqueBlendParams {
            cliques,
            clique_size,
            removal: 0.05,
            sparse_nodes,
            sparse_p: (8.0 / n as f64).min(0.3),
        },
        seed,
    );
    let lists = random_lists(&graph, 48, 0, seed ^ 0x22);
    Instance {
        name: "blend-lists",
        graph,
        lists,
    }
}

/// Dense instance whose minimum degree clears the phase threshold — the
/// Theorem 1 `O(log* n)` regime, laptop-scaled.
pub fn high_degree(n: usize, dmin: usize, seed: u64) -> Instance {
    let p = (1.5 * dmin as f64 / n as f64).min(0.9);
    let graph = gen::gnp_min_degree(n, p, dmin, seed);
    let lists = degree_plus_one_lists(&graph);
    Instance {
        name: "high-degree",
        graph,
        lists,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_valid_d1lc() {
        for inst in [
            gnp_d1c(200, 1),
            gnp_lists(200, 2),
            blend_lists(300, 3),
            gnp_window(200, 4),
            blend_window(300, 5),
        ] {
            assert!(inst.lists.is_degree_plus_one(&inst.graph), "{}", inst.name);
        }
    }

    #[test]
    fn high_degree_has_min_degree() {
        let inst = high_degree(300, 40, 4);
        assert!(inst.graph.min_degree() >= 40);
    }

    #[test]
    fn scales_differ() {
        assert!(Scale::Full.n_sweep().len() > Scale::Quick.n_sweep().len());
        assert!(Scale::Full.trials() > Scale::Quick.trials());
    }
}
