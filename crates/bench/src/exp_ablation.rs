//! E16 — ablations of the design choices DESIGN.md calls out:
//!
//! * **A1** MultiTrial window size σ: the paper sets `σ = Θ(log n)`;
//!   shrinking it starves the sampler, growing it buys little.
//! * **A2** Alg. 1's scale-up step (`k`): without it, small sets break the
//!   Lemma 1 preconditions and similarity estimates collapse.
//! * **A3** the dense machinery (SynchColorTrial + put-aside): disabling
//!   it dumps almost-clique members onto the generic slack path.

use crate::scenario::{Scenario, TableScenario};
use crate::table::{f2, f3, mean, Table};
use crate::workloads::Scale;
use congest::SimConfig;
use d1lc::driver::Driver;
use d1lc::multitrial::MultiTrialPass;
use d1lc::wire::ColorCodec;
use d1lc::{solve, NodeState, Palette, ParamProfile, SolveOptions};
use estimate::{estimate_similarity, SimilarityScheme};
use graphs::{gen, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registry entries for this module (E16a/b/c).
pub fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        TableScenario::boxed(
            "E16a",
            "Ablation: MultiTrial window sigma",
            "sigma = Theta(log n) suffices; tiny windows starve the color sampler",
            ablation_sigma,
        ),
        TableScenario::boxed(
            "E16b",
            "Ablation: Alg. 1 scale-up",
            "Under simulated advice the scale-up step is statistically neutral",
            ablation_scaleup,
        ),
        TableScenario::boxed(
            "E16c",
            "Ablation: dense machinery",
            "Without ACD + SynchColorTrial + put-aside, dense nodes fall to fallback/cleanup",
            ablation_dense_machinery,
        ),
    ]
}

/// A1: MultiTrial success rate as a function of the window σ.
pub fn ablation_sigma(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16a — Ablation: MultiTrial window σ",
        "σ = Θ(log n) suffices; tiny windows starve the color sampler",
    );
    t.columns(["sigma", "success-rate"]);
    let trials = scale.trials();
    for sigma in [8u64, 32, 96, 256, 512] {
        let mut profile = ParamProfile::laptop();
        profile.mt_sigma_clamp = (sigma, sigma);
        let mut colored = 0usize;
        let mut total = 0usize;
        for trial in 0..trials {
            let g = gen::complete(9);
            let states: Vec<NodeState> = (0..g.n())
                .map(|v| {
                    let d = g.degree(v as NodeId);
                    let list: Vec<u64> = (0..(d as u64 + 56)).map(|i| i * 101 + trial).collect();
                    let mut st = NodeState::new(
                        v as NodeId,
                        Palette::new(list),
                        ColorCodec::new(&profile, 7, g.n(), 32, d),
                        d,
                    );
                    st.active = true;
                    st.neighbor_active = vec![true; d];
                    st
                })
                .collect();
            let mut driver = Driver::new(&g, SimConfig::seeded(300 + trial));
            let states = driver
                .run_pass("mt", states, |st| {
                    MultiTrialPass::new(st, 4, profile, 42, 9, "mt")
                })
                .expect("pass");
            colored += states.iter().filter(|s| s.color.is_some()).count();
            total += states.len();
        }
        t.row([sigma.to_string(), f3(colored as f64 / total as f64)]);
    }
    t
}

/// A2: similarity estimation with and without Alg. 1's scale-up step.
///
/// Reproduction finding: under *simulated* advice (a seeded truly random
/// family — DESIGN.md §3.2) the scale-up changes nothing statistically:
/// the expected window count `σ|S∩|/λ` is invariant in `k`, and the step
/// exists to satisfy the Lemma 1 *existence proof's* minimum-λ hypothesis,
/// which a random family does not need. Measured errors with and without
/// the step are comparable (the scaled variant is slightly noisier from
/// self-collisions among the k copies).
pub fn ablation_scaleup(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16b — Ablation: Alg. 1 scale-up (step 2)",
        "Under simulated advice the scale-up is statistically neutral (it serves the existence proof, not the estimate)",
    );
    t.columns(["|S|", "scale-up", "mean |err| / truth"]);
    let trials = scale.trials();
    for size in [8usize, 16] {
        for scaled in [true, false] {
            let scheme = SimilarityScheme {
                scale_cap: if scaled { 32 } else { 1 },
                ..SimilarityScheme::practical(0.25)
            };
            let s: Vec<u64> = (0..size as u64).collect();
            let truth = size as f64;
            let mut errs = Vec::new();
            for trial in 0..trials {
                let mut rng = StdRng::seed_from_u64(trial);
                let out = estimate_similarity(&scheme, &s, &s, 13, &mut rng);
                errs.push((out.estimate - truth).abs() / truth);
            }
            t.row([size.to_string(), scaled.to_string(), f2(mean(&errs))]);
        }
    }
    t
}

/// A3: the dense machinery on/off, measured on a clique-blend instance.
pub fn ablation_dense_machinery(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16c — Ablation: dense machinery (ACD + SynchColorTrial + put-aside)",
        "Treating almost-cliques as generic sparse nodes shifts their coloring to the fallback/cleanup passes",
    );
    t.columns([
        "configuration",
        "rounds",
        "by-dense-passes",
        "by-sparse-passes",
        "by-fallback+cleanup",
    ]);
    let n = match scale {
        Scale::Quick => 512,
        Scale::Full => 1024,
    };
    let inst = crate::workloads::blend_window(n, 77);
    for dense_on in [true, false] {
        let mut profile = ParamProfile::laptop();
        if !dense_on {
            // Classify nobody as dense: raise the buddy threshold past 1.
            profile.eps_acd = 1e-9;
        }
        let opts = SolveOptions {
            profile,
            ..SolveOptions::seeded(5)
        };
        let r = solve(&inst.graph, &inst.lists, opts).expect("solve");
        let dense_passes: usize = r
            .stats
            .colored_by
            .iter()
            .filter(|(k, _)| {
                ["synch-trial", "put-aside", "slack-outliers", "slack-dense"].contains(k)
            })
            .map(|(_, v)| v)
            .sum();
        let sparse_passes: usize = r
            .stats
            .colored_by
            .iter()
            .filter(|(k, _)| {
                [
                    "generate-slack",
                    "slack-start",
                    "slack-sparse",
                    "generate-slack-dense",
                ]
                .contains(k)
            })
            .map(|(_, v)| v)
            .sum();
        let fallback: usize = r
            .stats
            .colored_by
            .iter()
            .filter(|(k, _)| ["fallback", "cleanup"].contains(k))
            .map(|(_, v)| v)
            .sum();
        t.row([
            if dense_on {
                "full pipeline"
            } else {
                "dense machinery off"
            }
            .to_string(),
            r.rounds().to_string(),
            dense_passes.to_string(),
            sparse_passes.to_string(),
            fallback.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_ablation_shows_starvation() {
        let t = ablation_sigma(Scale::Quick);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn scaleup_ablation_runs() {
        assert_eq!(ablation_scaleup(Scale::Quick).len(), 4);
    }
}
