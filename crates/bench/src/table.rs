//! Minimal fixed-width table rendering for the experiment harness.

/// A printable experiment table: header, aligned rows, caption.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    claim: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table for experiment `title` reproducing `claim`.
    pub fn new(title: impl Into<String>, claim: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            ..Default::default()
        }
    }

    /// Set the column headers.
    pub fn columns<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cols: I) -> &mut Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The experiment title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The paper claim this table exercises.
    pub fn claim(&self) -> &str {
        &self.claim
    }

    /// The column headers.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// The data rows (stringified cells).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown-ish fixed-width table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        out.push_str(&format!("Claim: {}\n\n", self.claim));
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.columns));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Empirical `q`-quantile (0 for empty input).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in experiment data"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "testing");
        t.columns(["n", "rounds"]);
        t.row(["256", "42"]);
        t.row(["10000", "57"]);
        let s = t.render();
        assert!(s.contains("### E0"));
        assert!(s.contains("| 10000 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.1), "0.100");
    }
}
