//! Micro-benchmarks of the pseudorandom substrate: representative-hash
//! set operators, pairwise hashing, Reed–Solomon encoding, samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prand::{mix64, IdCode, MultisetSampler, PairwiseFamily, RepHashFamily, RepParams};

fn bench_rep_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("rep-hash");
    let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 2400, 256, 16);
    let fam = RepHashFamily::new(7, params);
    let h = fam.member(3);
    let set: Vec<u64> = (0..400u64).map(|i| i * 131).collect();
    group.bench_function("hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            h.hash(i)
        })
    });
    group.bench_with_input(BenchmarkId::new("isolated", set.len()), &set, |b, s| {
        b.iter(|| h.isolated(s, s))
    });
    group.bench_with_input(
        BenchmarkId::new("window-bitmap", set.len()),
        &set,
        |b, s| b.iter(|| h.window_bitmap(s)),
    );
    group.finish();
}

fn bench_pairwise_and_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash-primitives");
    let fam = PairwiseFamily::new(3, 1 << 20, 16);
    let h = fam.member(9);
    group.bench_function("pairwise-hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            h.hash(i)
        })
    });
    group.bench_function("mix64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            mix64(i)
        })
    });
    group.finish();
}

fn bench_ecc_and_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc-sampler");
    let code = IdCode::new();
    group.bench_function("id-encode", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            code.encode(i)
        })
    });
    let sampler = MultisetSampler::new(5, 10_000, 256, 16);
    group.bench_function("multiset-256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = (seed + 1) % sampler.num_seeds();
            sampler.multiset(seed).sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rep_hash,
    bench_pairwise_and_mix,
    bench_ecc_and_sampler
);
criterion_main!(benches);
