//! Routing microbenchmark of the CONGEST engine's message plane: the CSR
//! edge-indexed mailbox (`congest::run`) versus the pre-PR
//! sort-and-scatter plane (`congest::reference::run_reference`), at the
//! ISSUE-2 acceptance scale — G(n = 20 000, p = 10/n), 50 flood rounds —
//! for both lanes (broadcast flood and per-neighbor targeted flood).
//!
//! The workload is `bench::exp_plane`'s — the same programs experiment
//! E0 reports on and snapshots into `BENCH_2.json`; this bench exists so
//! `cargo bench -p bench` tracks the plane alongside the protocol
//! benches.

use bench::exp_plane::{programs, Mode};
use congest::reference::run_reference;
use congest::{run, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use graphs::gen;
use std::time::Duration;

const N: usize = 20_000;

fn bench_engine_plane(c: &mut Criterion) {
    let graph = gen::gnp(N, 10.0 / N as f64, 42);
    let mut group = c.benchmark_group("engine-plane");
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(30));
    for (name, mode) in [("bcast", Mode::Bcast), ("send", Mode::Targeted)] {
        group.bench_function(format!("{name}/reference/t1"), |b| {
            b.iter(|| run_reference(&graph, programs(N, mode), SimConfig::seeded(7)).expect("run"))
        });
        for threads in [1usize, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(7)
            };
            group.bench_function(format!("{name}/mailbox/t{threads}"), |b| {
                b.iter(|| run(&graph, programs(N, mode), cfg).expect("run"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_plane);
criterion_main!(benches);
