//! Throughput benchmark: a request stream through the concurrent
//! [`d1lc::server::SolveServer`] arms vs fresh-session-per-solve.
//!
//! This is the criterion companion of experiment E0c (whose committed
//! full-scale snapshot is `BENCH_5.json`): the same repeat-heavy
//! `uniform-256` serving stream, driven closed-loop at one worker and
//! measured per batch by
//! `cargo bench -p bench --bench solve_throughput`
//! (`just bench-throughput`). Every arm produces byte-identical
//! responses (asserted inside E0c and by the server's differential
//! proptests); the arms differ only in what they amortize across the
//! stream. The open-loop saturation companion is E0d
//! (`just bench-server`).

use bench::exp_service::{serve_stream, uniform_requests};
use bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use d1lc::service::ServiceConfig;
use std::time::Duration;

fn bench_solve_throughput(c: &mut Criterion) {
    // E0c's own quick-scale uniform-256 serving stream, so the bench and
    // the experiment can never drift apart.
    let requests = uniform_requests(Scale::Quick);
    let mut group = c.benchmark_group("solve-throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    for (label, config) in [
        ("fresh", ServiceConfig::fresh_per_solve()),
        ("pooled", ServiceConfig::pooled_only()),
        ("service", ServiceConfig::default()),
    ] {
        group.bench_function(format!("uniform-256/{label}"), |b| {
            b.iter(|| {
                // A cold server per batch: memo hits are earned within
                // the measured stream, exactly as E0c measures them.
                serve_stream(config, &requests)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solve_throughput);
criterion_main!(benches);
