//! End-to-end solve benchmark: the full D1LC pipeline on the S1 workload
//! family (G(n, 24/n) with shared-window lists) through each engine path
//! — the persistent session, the preserved pre-session per-pass engine,
//! and the legacy sort-and-scatter plane.
//!
//! This is the criterion companion of experiment E0b (whose committed
//! full-scale snapshot is `BENCH_4.json`); it exists so
//! `cargo bench -p bench --bench solve_pipeline` (`just bench-solve`)
//! tracks the whole solve path, engine *and* pass compute, alongside the
//! per-plane microbenches.

use bench::workloads;
use congest::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use d1lc::{solve, EngineMode, SolveOptions};
use std::time::Duration;

/// The E0b acceptance scale: the S1 family at the largest quick-scale n.
const N: usize = 1024;

fn bench_solve_pipeline(c: &mut Criterion) {
    let inst = workloads::gnp_window(N, 1);
    let mut group = c.benchmark_group("solve-pipeline");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(20));
    for (label, engine) in [
        ("session", EngineMode::Session),
        ("per-pass", EngineMode::PerPass),
        ("reference", EngineMode::Reference),
    ] {
        for threads in [1usize, 8] {
            let opts = SolveOptions {
                engine,
                sim: SimConfig {
                    threads,
                    ..SimConfig::default()
                },
                ..SolveOptions::seeded(1)
            };
            group.bench_function(format!("{label}/t{threads}"), |b| {
                b.iter(|| solve(&inst.graph, &inst.lists, opts).expect("solve"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solve_pipeline);
criterion_main!(benches);
