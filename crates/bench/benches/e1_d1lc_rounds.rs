//! E1/E3 timing benches: wall-clock of the full D1LC pipeline vs the
//! random-trial baseline (the round counts themselves come from the
//! `experiments` binary).

use bench::workloads::{blend_window, gnp_d1c, gnp_window};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d1lc::{solve, solve_random_trial, SolveOptions};
use std::time::Duration;

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1lc-solve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [256usize, 512] {
        for make in [gnp_window as fn(usize, u64) -> _, blend_window] {
            let inst = make(n, 7 + n as u64);
            group.bench_with_input(BenchmarkId::new(inst.name, n), &inst, |b, inst| {
                b.iter(|| solve(&inst.graph, &inst.lists, SolveOptions::seeded(1)).expect("solve"))
            });
        }
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1lc-baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [256usize, 512] {
        let inst = gnp_d1c(n, 11 + n as u64);
        group.bench_with_input(BenchmarkId::new("random-trial", n), &inst, |b, inst| {
            b.iter(|| {
                solve_random_trial(&inst.graph, &inst.lists, SolveOptions::seeded(2))
                    .expect("baseline")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solve, bench_baseline);
criterion_main!(benches);
