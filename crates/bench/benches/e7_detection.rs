//! E7/E8 timing benches: local triangle and four-cycle detection.

use congest::SimConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estimate::{find_four_cycle_rich_wedges, find_triangle_rich_edges, SimilarityScheme};
use graphs::gen;
use std::time::Duration;

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle-detection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [128usize, 256] {
        let g = gen::triangle_rich(n, 24, 0.03, 7);
        group.bench_with_input(BenchmarkId::new("planted", n), &g, |b, g| {
            b.iter(|| {
                find_triangle_rich_edges(
                    g,
                    0.5,
                    SimilarityScheme::practical(0.25),
                    SimConfig::seeded(3),
                    11,
                )
                .expect("triangle run")
            })
        });
    }
    group.finish();
}

fn bench_four_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("four-cycle-detection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [128usize, 256] {
        let g = gen::four_cycle_rich(n, 24, 0.03, 9);
        group.bench_with_input(BenchmarkId::new("planted", n), &g, |b, g| {
            b.iter(|| {
                find_four_cycle_rich_wedges(g, 0.5, SimConfig::seeded(4), 13)
                    .expect("four-cycle run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangles, bench_four_cycles);
criterion_main!(benches);
