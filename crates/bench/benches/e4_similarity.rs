//! E4/E6 timing benches: the two-party `EstimateSimilarity` procedure and
//! the whole-graph neighborhood-similarity protocol.

use congest::SimConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estimate::{estimate_similarity, run_neighborhood_similarity, SimilarityScheme};
use graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_two_party(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate-similarity");
    group.measurement_time(Duration::from_secs(3));
    for eps in [0.5, 0.25, 0.125] {
        let scheme = SimilarityScheme::practical(eps);
        let su: Vec<u64> = (0..600).collect();
        let sv: Vec<u64> = (300..900).collect();
        group.bench_with_input(
            BenchmarkId::new("eps", format!("{eps}")),
            &scheme,
            |b, scheme| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| estimate_similarity(scheme, &su, &sv, 42, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_whole_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood-similarity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [128usize, 256] {
        let g = gen::gnp(n, (16.0 / n as f64).min(0.5), 3);
        group.bench_with_input(BenchmarkId::new("gnp", n), &g, |b, g| {
            b.iter(|| {
                run_neighborhood_similarity(
                    g,
                    SimilarityScheme::practical(0.25),
                    SimConfig::seeded(5),
                    9,
                )
                .expect("protocol run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_party, bench_whole_graph);
criterion_main!(benches);
