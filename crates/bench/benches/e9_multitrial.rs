//! E9/E12 timing benches: one MultiTrial pass, representative-hash vs
//! uniform vs naive.

use bench::workloads::gnp_d1c;
use congest::SimConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d1lc::baseline::NaiveMultiTrialPass;
use d1lc::driver::Driver;
use d1lc::multitrial::MultiTrialPass;
use d1lc::multitrial_uniform::UniformMultiTrialPass;
use d1lc::pipeline::{initial_states, SolveOptions};
use d1lc::ParamProfile;
use std::time::Duration;

fn bench_multitrial_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("multitrial-pass");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let n = 256usize;
    let inst = gnp_d1c(n, 5);
    let profile = ParamProfile::laptop();
    let opts = SolveOptions::seeded(3);
    let make_states = || {
        let mut states = initial_states(&inst.graph, &inst.lists, &profile, opts.seed);
        for st in &mut states {
            st.active = true;
            for a in &mut st.neighbor_active {
                *a = true;
            }
        }
        states
    };
    let x = 4u32;
    group.bench_function(BenchmarkId::new("rep-hash", n), |b| {
        b.iter(|| {
            let mut driver = Driver::new(&inst.graph, SimConfig::seeded(1));
            driver
                .run_pass("mt", make_states(), |st| {
                    MultiTrialPass::new(st, x, profile, 42, n, "mt")
                })
                .expect("pass")
        })
    });
    group.bench_function(BenchmarkId::new("uniform", n), |b| {
        b.iter(|| {
            let mut driver = Driver::new(&inst.graph, SimConfig::seeded(1));
            driver
                .run_pass("mt", make_states(), |st| {
                    UniformMultiTrialPass::new(st, x, profile, 42, n, "mt")
                })
                .expect("pass")
        })
    });
    group.bench_function(BenchmarkId::new("naive", n), |b| {
        b.iter(|| {
            let mut driver = Driver::new(&inst.graph, SimConfig::seeded(1));
            driver
                .run_pass("mt", make_states(), |st| {
                    NaiveMultiTrialPass::new(st, x, 16)
                })
                .expect("pass")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_multitrial_variants);
criterion_main!(benches);
