//! Graph substrate for the congest-coloring reproduction.
//!
//! This crate provides everything graph-shaped that the paper's algorithms
//! and experiments need, with no distributed-computing concerns:
//!
//! * [`Graph`]: a compact, immutable, undirected simple graph in CSR form,
//!   built through [`GraphBuilder`];
//! * [`gen`]: workload generators — Erdős–Rényi [`gen::gnp`], planted
//!   almost-clique blends [`gen::clique_blend`], Chung–Lu power-law graphs
//!   [`gen::chung_lu`], structured graphs (cycles, stars, grids, complete
//!   bipartite), and triangle-/four-cycle-rich instances for the
//!   subgraph-detection experiments;
//! * [`analysis`]: ground truths the experiments compare against — local and
//!   global sparsity (Definition 1 of the paper), per-edge triangle counts,
//!   per-wedge four-cycle counts, neighborhood intersections;
//! * [`palette`]: list-assignment generators for the (degree+1)-list-coloring
//!   problem and validity checking of colorings.
//!
//! # Example
//!
//! ```
//! use graphs::gen;
//! use graphs::analysis;
//!
//! let g = gen::gnp(100, 0.1, 42);
//! assert_eq!(g.n(), 100);
//! let zeta = analysis::local_sparsity(&g, 0);
//! assert!(zeta >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod gen;
mod graph;
pub mod palette;

pub use graph::{Graph, GraphBuilder};

/// Node identifier: an index into `0..n`.
pub type NodeId = u32;

/// A color value. Colors live in a declared color space `[0, 2^color_bits)`;
/// the distributed layer charges `color_bits` for sending one raw color.
pub type Color = u64;
