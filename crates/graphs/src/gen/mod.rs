//! Workload generators.
//!
//! Each generator is deterministic given its `seed`, so experiments are
//! reproducible. The families cover the regimes the paper's algorithms
//! distinguish: sparse neighborhoods (Erdős–Rényi), dense almost-cliques
//! (planted blends), skewed degrees (Chung–Lu), and planted triangle- or
//! four-cycle-rich structure for the detection experiments.

mod cliques;
mod gnp;
mod ladder;
mod powerlaw;
mod regular;
mod structured;
mod subgraph_rich;

pub use cliques::{clique_blend, disjoint_cliques, hub_and_spokes, planted_acd, CliqueBlendParams};
pub use gnp::{gnp, gnp_min_degree};
pub use ladder::{geometric_ladder, pow2_ladder};
pub use powerlaw::chung_lu;
pub use regular::random_regular;
pub use structured::{complete, complete_bipartite, cycle, grid, path, star};
pub use subgraph_rich::{four_cycle_rich, triangle_rich};
