//! Planted dense structure: disjoint cliques, almost-clique blends, and
//! full planted almost-clique-decomposition instances.
//!
//! These are the workloads on which the paper's dense-node machinery
//! (almost-clique decomposition, leaders, put-aside sets, SynchColorTrial)
//! actually fires.

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k` disjoint cliques of `size` nodes each.
pub fn disjoint_cliques(k: usize, size: usize) -> Graph {
    let mut b = GraphBuilder::new(k * size);
    for c in 0..k {
        let base = (c * size) as NodeId;
        for i in 0..size as NodeId {
            for j in (i + 1)..size as NodeId {
                b.add_edge(base + i, base + j);
            }
        }
    }
    b.build()
}

/// Parameters for [`clique_blend`].
#[derive(Clone, Copy, Debug)]
pub struct CliqueBlendParams {
    /// Number of planted almost-cliques.
    pub cliques: usize,
    /// Nodes per planted clique.
    pub clique_size: usize,
    /// Fraction of each clique's internal edges removed (0 = exact cliques).
    pub removal: f64,
    /// Number of additional sparse background nodes.
    pub sparse_nodes: usize,
    /// Edge probability among sparse nodes and between sparse nodes and
    /// cliques.
    pub sparse_p: f64,
}

impl Default for CliqueBlendParams {
    fn default() -> Self {
        CliqueBlendParams {
            cliques: 4,
            clique_size: 24,
            removal: 0.05,
            sparse_nodes: 64,
            sparse_p: 0.05,
        }
    }
}

/// A blend of perturbed cliques and a sparse background, the canonical
/// input exercising both sides of an almost-clique decomposition.
///
/// Nodes `0..cliques*clique_size` are clique members (clique `i` owns the
/// contiguous block starting at `i*clique_size`); the remaining
/// `sparse_nodes` are background.
pub fn clique_blend(p: CliqueBlendParams, seed: u64) -> Graph {
    let clique_total = p.cliques * p.clique_size;
    let n = clique_total + p.sparse_nodes;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Perturbed cliques: keep each internal edge with prob 1 - removal.
    for c in 0..p.cliques {
        let base = (c * p.clique_size) as NodeId;
        for i in 0..p.clique_size as NodeId {
            for j in (i + 1)..p.clique_size as NodeId {
                if rng.gen::<f64>() >= p.removal {
                    b.add_edge(base + i, base + j);
                }
            }
        }
    }
    // Sparse background among non-clique nodes and across.
    for u in clique_total..n {
        for v in 0..u {
            if rng.gen::<f64>() < p.sparse_p {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// A planted almost-clique-decomposition instance with known ground truth:
/// returns the graph together with the planted class of each node
/// (`Some(c)` = member of planted clique `c`, `None` = sparse background).
///
/// Clique members keep `1 - removal` of their internal edges and receive a
/// few random external edges, so they are dense but not exact-clique; the
/// background is `G(n_s, sparse_p)`.
pub fn planted_acd(
    cliques: usize,
    clique_size: usize,
    removal: f64,
    sparse_nodes: usize,
    sparse_p: f64,
    seed: u64,
) -> (Graph, Vec<Option<u32>>) {
    let g = clique_blend(
        CliqueBlendParams {
            cliques,
            clique_size,
            removal,
            sparse_nodes,
            sparse_p,
        },
        seed,
    );
    let mut truth = vec![None; g.n()];
    for c in 0..cliques {
        for i in 0..clique_size {
            truth[c * clique_size + i] = Some(c as u32);
        }
    }
    (g, truth)
}

/// Uneven instance: a small core of high-degree hubs plus many low-degree
/// satellites attached to hubs, producing nodes whose neighbors have much
/// larger degrees (the `V^{uneven}` class of Definition 6).
pub fn hub_and_spokes(hubs: usize, spokes_per_hub: usize, seed: u64) -> Graph {
    let n = hubs + hubs * spokes_per_hub;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Hubs form a clique.
    for u in 0..hubs as NodeId {
        for v in (u + 1)..hubs as NodeId {
            b.add_edge(u, v);
        }
    }
    // Each spoke attaches to its hub and one random other hub.
    for s in 0..(hubs * spokes_per_hub) {
        let spoke = (hubs + s) as NodeId;
        let home = (s % hubs) as NodeId;
        b.add_edge(spoke, home);
        if hubs > 1 {
            let other = rng.gen_range(0..hubs) as NodeId;
            b.add_edge(spoke, other);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn disjoint_cliques_structure() {
        let g = disjoint_cliques(3, 5);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 3 * 10);
        let (_, k) = g.components();
        assert_eq!(k, 3);
    }

    #[test]
    fn blend_is_deterministic() {
        let p = CliqueBlendParams::default();
        assert_eq!(clique_blend(p, 5), clique_blend(p, 5));
    }

    #[test]
    fn blend_clique_members_are_dense() {
        let p = CliqueBlendParams {
            cliques: 2,
            clique_size: 30,
            removal: 0.02,
            sparse_nodes: 60,
            sparse_p: 0.15,
        };
        let g = clique_blend(p, 11);
        // A clique member's *normalized* local sparsity ζ_v/d_v should be
        // far below a background node's (sparsity scales with degree, so
        // absolute values are not comparable across degrees).
        let member = 0;
        let background = (2 * 30 + 1) as NodeId;
        let norm = |v: NodeId| analysis::local_sparsity(&g, v) / g.degree(v).max(1) as f64;
        assert!(
            norm(member) < 0.7 * norm(background),
            "member ζ/d = {}, background ζ/d = {}",
            norm(member),
            norm(background)
        );
    }

    #[test]
    fn planted_truth_covers_all_nodes() {
        let (g, truth) = planted_acd(3, 10, 0.05, 20, 0.05, 9);
        assert_eq!(truth.len(), g.n());
        assert_eq!(truth.iter().filter(|t| t.is_some()).count(), 30);
    }

    #[test]
    fn hub_and_spokes_shape() {
        let g = hub_and_spokes(4, 10, 2);
        assert_eq!(g.n(), 44);
        // Spokes have degree ≤ 2, hubs much larger.
        assert!(g.degree(0) >= 3 + 10);
        assert!(g.degree(4) <= 2);
    }
}
