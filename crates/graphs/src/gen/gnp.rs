//! Erdős–Rényi random graphs.

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so generation takes `O(n + m)` expected time
/// rather than `O(n²)` when `p` is small.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    let mut b = GraphBuilder::new(n);
    if n >= 2 && p > 0.0 {
        let mut rng = StdRng::seed_from_u64(seed);
        if p >= 1.0 {
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    b.add_edge(u, v);
                }
            }
            return b.build();
        }
        // Iterate over the pairs (u, v), u < v, in lexicographic order,
        // skipping a Geometric(p)-distributed number of non-edges each step.
        let log_q = (1.0 - p).ln();
        let total_pairs = n as u64 * (n as u64 - 1) / 2;
        let mut idx: u64 = 0;
        loop {
            let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (r.ln() / log_q).floor() as u64;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= total_pairs {
                break;
            }
            let (u, v) = pair_of_index(n as u64, idx);
            b.add_edge(u as NodeId, v as NodeId);
            idx += 1;
        }
    }
    b.build()
}

/// `G(n, p)` conditioned on minimum degree ≥ `dmin`: after sampling, every
/// deficient node is topped up with edges to uniformly random distinct
/// partners. Used for the high-min-degree experiments (Theorem 1's
/// `O(log* n)` regime).
pub fn gnp_min_degree(n: usize, p: f64, dmin: usize, seed: u64) -> Graph {
    assert!(dmin < n, "dmin must be < n");
    let base = gnp(n, p, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = GraphBuilder::new(n);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    let mut extra: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        let need = dmin.saturating_sub(base.degree(v as NodeId) + extra[v].len());
        let mut added = 0;
        let mut attempts = 0;
        while added < need && attempts < 50 * (need + 1) {
            attempts += 1;
            let w = rng.gen_range(0..n) as NodeId;
            if w as usize == v
                || base.has_edge(v as NodeId, w)
                || extra[v].contains(&w)
                || extra[w as usize].contains(&(v as NodeId))
            {
                continue;
            }
            extra[v].push(w);
            extra[w as usize].push(v as NodeId);
            b.add_edge(v as NodeId, w);
            added += 1;
        }
    }
    b.build()
}

/// Map a lexicographic pair index to the pair `(u, v)`, `u < v`, over `n`
/// nodes. Index 0 is `(0,1)`, index `n-2` is `(0,n-1)`, index `n-1` is
/// `(1,2)` and so on.
fn pair_of_index(n: u64, idx: u64) -> (u64, u64) {
    // Row u starts at offset S(u) = u*n - u*(u+1)/2 - u... derive by scan.
    // Binary search on u: number of pairs with first coordinate < u is
    // f(u) = u*(2n - u - 1)/2.
    let f = |u: u64| u * (2 * n - u - 1) / 2;
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if f(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - f(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_indexing_roundtrip() {
        let n = 7u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_of_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn p_zero_and_one() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gnp(64, 0.2, 7);
        let b = gnp(64, 0.2, 7);
        assert_eq!(a, b);
        let c = gnp(64, 0.2, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_concentrates() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "m = {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn min_degree_is_enforced() {
        let g = gnp_min_degree(100, 0.02, 8, 3);
        assert!(g.min_degree() >= 8, "min degree {}", g.min_degree());
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnp(0, 0.5, 1).n(), 0);
        assert_eq!(gnp(1, 0.5, 1).m(), 0);
    }
}
