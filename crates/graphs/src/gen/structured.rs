//! Deterministic structured graphs: cliques, cycles, paths, stars, grids,
//! complete bipartite graphs.

use crate::{Graph, GraphBuilder, NodeId};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The cycle `C_n` (empty for `n < 3`).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n >= 3 {
        for v in 0..n as NodeId {
            b.add_edge(v, ((v as usize + 1) % n) as NodeId);
        }
    }
    b.build()
}

/// The path `P_n` on `n` nodes.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// The star with `leaves` leaves; node 0 is the center.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves as NodeId {
        b.add_edge(0, v);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; part A is `0..a`, part B is
/// `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a as NodeId {
        for v in a as NodeId..(a + b) as NodeId {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(5);
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(cycle(2).m(), 0);
    }

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn star_counts() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.m(), 7);
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }
}
