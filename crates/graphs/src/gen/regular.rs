//! Near-regular random graphs via the configuration model.

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A random (near-)`d`-regular simple graph by the configuration model:
/// `d` stubs per node are paired uniformly; self-loops and duplicate
/// pairings are dropped (so a few nodes may end with degree `d − O(1)`).
///
/// Regular graphs are the degree-uniform extreme for the coloring
/// experiments: no node is "uneven" and sparsity is homogeneous.
///
/// # Panics
///
/// Panics if `d >= n` or `n·d` is odd.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be below n");
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<NodeId> = (0..n as NodeId)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_concentrate_near_d() {
        let g = random_regular(200, 8, 3);
        assert_eq!(g.n(), 200);
        let avg = 2.0 * g.m() as f64 / 200.0;
        assert!(avg > 7.0, "avg degree {avg}");
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_regular(60, 4, 9), random_regular(60, 4, 9));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_stub_count() {
        let _ = random_regular(5, 3, 1);
    }

    #[test]
    #[should_panic(expected = "below n")]
    fn rejects_degree_at_least_n() {
        let _ = random_regular(4, 4, 1);
    }
}
