//! Scale ladders: the node-count sequences scenario sweeps run over.
//!
//! A *ladder* is a geometrically increasing sequence of instance sizes.
//! Asymptotic claims (rounds = `O(log^k log n)`, bandwidth = `O(log n)`)
//! are only testable across a geometric range — linear steps barely move
//! `log n`, let alone `log log n` — so every sweep in `crates/bench` draws
//! its sizes from one of these helpers.

/// Powers of two `2^lo_exp, 2^(lo_exp+1), …, 2^hi_exp` (inclusive).
///
/// The canonical sweep ladder: each rung doubles `n`, so `log2 n`
/// advances by exactly 1 per rung and asymptotic fits get evenly spaced
/// sample points.
///
/// # Panics
///
/// Panics if `lo_exp > hi_exp` or `hi_exp` would overflow `usize`.
///
/// # Example
///
/// ```
/// use graphs::gen::pow2_ladder;
///
/// assert_eq!(pow2_ladder(8, 11), vec![256, 512, 1024, 2048]);
/// assert_eq!(pow2_ladder(4, 4), vec![16]);
/// ```
pub fn pow2_ladder(lo_exp: u32, hi_exp: u32) -> Vec<usize> {
    assert!(lo_exp <= hi_exp, "ladder must ascend: {lo_exp} > {hi_exp}");
    assert!(
        (hi_exp as usize) < usize::BITS as usize,
        "2^{hi_exp} overflows usize"
    );
    (lo_exp..=hi_exp).map(|e| 1usize << e).collect()
}

/// Geometric ladder `lo, lo*factor, lo*factor², …` capped at `hi`
/// (inclusive; the last rung is the largest `lo·factorᵏ ≤ hi`).
///
/// # Panics
///
/// Panics if `lo == 0`, `factor < 2`, or `lo > hi`.
///
/// # Example
///
/// ```
/// use graphs::gen::geometric_ladder;
///
/// assert_eq!(geometric_ladder(100, 1000, 3), vec![100, 300, 900]);
/// assert_eq!(geometric_ladder(64, 64, 2), vec![64]);
/// ```
pub fn geometric_ladder(lo: usize, hi: usize, factor: usize) -> Vec<usize> {
    assert!(lo > 0, "ladder must start above zero");
    assert!(factor >= 2, "a geometric ladder needs factor >= 2");
    assert!(lo <= hi, "ladder must ascend: {lo} > {hi}");
    let mut out = Vec::new();
    let mut n = lo;
    loop {
        out.push(n);
        match n.checked_mul(factor) {
            Some(next) if next <= hi => n = next,
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ladder_is_doubling() {
        let l = pow2_ladder(10, 14);
        assert_eq!(l, vec![1024, 2048, 4096, 8192, 16384]);
        assert!(l.windows(2).all(|w| w[1] == 2 * w[0]));
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn pow2_ladder_rejects_descending() {
        let _ = pow2_ladder(5, 4);
    }

    #[test]
    fn geometric_ladder_caps_at_hi() {
        assert_eq!(geometric_ladder(10, 99, 2), vec![10, 20, 40, 80]);
        assert_eq!(geometric_ladder(10, 80, 2), vec![10, 20, 40, 80]);
    }

    #[test]
    fn geometric_ladder_survives_overflow() {
        // Doubling the second rung overflows usize; the ladder must stop
        // cleanly instead of wrapping.
        let l = geometric_ladder(usize::MAX / 2, usize::MAX, 2);
        assert_eq!(l, vec![usize::MAX / 2, usize::MAX - 1]);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn geometric_ladder_rejects_factor_one() {
        let _ = geometric_ladder(1, 10, 1);
    }
}
