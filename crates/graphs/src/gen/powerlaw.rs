//! Chung–Lu random graphs with power-law expected degrees.

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chung–Lu graph with expected degree sequence `w_i ∝ (i+1)^{-1/(γ-1)}`
/// scaled so the average expected degree is `avg_degree`.
///
/// Pair `{u, v}` is an edge with probability `min(1, w_u w_v / Σw)`. This
/// produces the skewed degree sequences on which the local-sparsity caveat
/// of Lemma 5 (neighbors of much larger degree) becomes visible.
///
/// # Panics
///
/// Panics if `gamma <= 1` or `avg_degree <= 0`.
pub fn chung_lu(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
    assert!(avg_degree > 0.0, "avg_degree must be positive");
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let exponent = -1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    for wi in &mut w {
        *wi *= scale;
    }
    let total: f64 = w.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.gen::<f64>() < p {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_is_roughly_right() {
        let n = 300;
        let g = chung_lu(n, 2.5, 8.0, 13);
        let avg = 2.0 * g.m() as f64 / n as f64;
        assert!((avg - 8.0).abs() < 3.0, "avg degree {avg}");
    }

    #[test]
    fn degrees_are_skewed() {
        let g = chung_lu(400, 2.2, 6.0, 17);
        // Node 0 has the largest weight; its degree should greatly exceed
        // the median node's.
        let d0 = g.degree(0);
        let dmid = g.degree(200);
        assert!(d0 > 3 * dmid.max(1), "d0 = {d0}, dmid = {dmid}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(chung_lu(100, 2.5, 5.0, 3), chung_lu(100, 2.5, 5.0, 3));
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = chung_lu(10, 1.0, 5.0, 1);
    }
}
