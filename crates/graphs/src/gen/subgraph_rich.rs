//! Planted triangle- and four-cycle-rich instances for the detection
//! experiments (Theorems 2 and 3).

use crate::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph where one designated edge `{0, 1}` participates in exactly
/// `triangles` triangles, embedded in triangle-poor `G(n, p)` noise.
///
/// Nodes `2..2+triangles` are common neighbors of 0 and 1. Noise edges are
/// added only between nodes `≥ 2 + triangles` to keep the planted count
/// exact.
pub fn triangle_rich(n: usize, triangles: usize, noise_p: f64, seed: u64) -> Graph {
    assert!(n >= triangles + 2, "need at least triangles + 2 nodes");
    let mut b = GraphBuilder::new(n);
    b.add_edge(0, 1);
    for t in 0..triangles as NodeId {
        b.add_edge(0, 2 + t);
        b.add_edge(1, 2 + t);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let first_noise = 2 + triangles;
    for u in first_noise..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < noise_p {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// A graph where the wedge `(2, 0, 3)` centered at node 0 closes exactly
/// `cycles` four-cycles: a planted `K_{2, cycles+1}` between `{2, 3}` and
/// `{0}` ∪ fresh nodes, plus background noise among the remaining nodes.
///
/// Concretely nodes 2 and 3 are both adjacent to node 0 and to `cycles`
/// shared partners, so the pair of edges `(0,2), (0,3)` lies on `cycles`
/// four-cycles `0–2–w–3–0`.
pub fn four_cycle_rich(n: usize, cycles: usize, noise_p: f64, seed: u64) -> Graph {
    assert!(n >= cycles + 4, "need at least cycles + 4 nodes");
    let mut b = GraphBuilder::new(n);
    b.add_edge(0, 2);
    b.add_edge(0, 3);
    for c in 0..cycles as NodeId {
        let w = 4 + c;
        b.add_edge(2, w);
        b.add_edge(3, w);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let first_noise = 4 + cycles;
    for u in first_noise..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < noise_p {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn planted_triangle_count_is_exact() {
        let g = triangle_rich(60, 12, 0.05, 21);
        assert_eq!(analysis::triangles_through_edge(&g, 0, 1), 12);
    }

    #[test]
    fn planted_four_cycle_count_is_exact() {
        let g = four_cycle_rich(60, 9, 0.05, 22);
        assert_eq!(analysis::four_cycles_through_wedge(&g, 0, 2, 3), 9);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn triangle_rich_rejects_small_n() {
        let _ = triangle_rich(5, 10, 0.0, 1);
    }
}
