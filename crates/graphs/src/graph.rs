//! Compact undirected simple graphs in compressed-sparse-row form.

use crate::NodeId;

/// An immutable, undirected, simple graph stored in CSR form.
///
/// Nodes are identified by indices `0..n`. Neighbor lists are sorted, which
/// makes membership queries (`has_edge`) logarithmic and neighborhood
/// intersections linear.
///
/// # Example
///
/// ```
/// use graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists, length `2m`.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree δ of the graph (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as NodeId))
            .min()
            .unwrap_or(0)
    }

    /// Sorted slice of neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// CSR row offsets, length `n + 1`.
    ///
    /// Node `v`'s neighbors occupy
    /// `adjacency()[offsets()[v]..offsets()[v + 1]]`, so `offsets()[v] + k`
    /// is the **directed edge id** of the edge from `v` to its `k`-th
    /// neighbor — the key the simulator's mailbox plane indexes by.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat adjacency array, length `2m`, indexed by directed edge id.
    #[inline]
    pub fn adjacency(&self) -> &[NodeId] {
        &self.adj
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all undirected edges, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Size of the intersection `|N(u) ∩ N(v)|` of two neighborhoods.
    ///
    /// This is also the number of triangles through the edge `{u, v}` when
    /// `u` and `v` are adjacent.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let (mut i, mut j) = (0, 0);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        let mut count = 0;
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Connected components, as a vector mapping each node to a component
    /// index in `0..k`, plus the number `k` of components.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut k = 0u32;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = k;
            stack.push(s as NodeId);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = k;
                        stack.push(w);
                    }
                }
            }
            k += 1;
        }
        (comp, k as usize)
    }

    /// The subgraph induced by `keep` (nodes where `keep[v]` is true),
    /// together with the mapping from new ids to original ids.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.n(), "keep mask must cover every node");
        let mut old_of_new = Vec::new();
        let mut new_of_old = vec![u32::MAX; self.n()];
        for v in 0..self.n() {
            if keep[v] {
                new_of_old[v] = old_of_new.len() as u32;
                old_of_new.push(v as NodeId);
            }
        }
        let mut b = GraphBuilder::new(old_of_new.len());
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                b.add_edge(new_of_old[u as usize], new_of_old[v as usize]);
            }
        }
        (b.build(), old_of_new)
    }
}

/// Incremental builder for [`Graph`].
///
/// Duplicate edges and self-loops are ignored, so generators can add edges
/// freely.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        self.edges.push(e);
    }

    /// Finish construction, deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list was filled in increasing order of the *other* endpoint
        // only for the first endpoint; sort every list to guarantee order.
        for v in 0..self.n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, adj }
    }
}

impl FromIterator<(NodeId, NodeId)> for GraphBuilder {
    /// Collect edges into a builder sized to the largest endpoint seen.
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        let edges: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.common_neighbors(0, 1), 1);
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(6);
        for v in [5, 2, 4, 1, 3] {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn components_of_two_triangles() {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let (comp, k) = g.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[true, true, false]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
        assert_eq!(map, vec![0, 1]);
    }

    #[test]
    fn from_iterator_sizes_graph() {
        let b: GraphBuilder = [(0u32, 3u32), (1, 2)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn csr_accessors_expose_edge_ids() {
        let g = triangle();
        assert_eq!(g.offsets(), &[0, 2, 4, 6]);
        assert_eq!(g.adjacency().len(), 2 * g.m());
        for v in 0..3u32 {
            let (lo, hi) = (g.offsets()[v as usize], g.offsets()[v as usize + 1]);
            assert_eq!(&g.adjacency()[lo..hi], g.neighbors(v));
        }
    }

    #[test]
    fn common_neighbors_disjoint() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(1, 4);
        b.add_edge(1, 5);
        let g = b.build();
        assert_eq!(g.common_neighbors(0, 1), 0);
    }
}
