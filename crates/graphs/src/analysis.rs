//! Ground-truth graph statistics the experiments compare against.
//!
//! Implements Definition 1 of the paper (global and local sparsity), the
//! triangle and four-cycle counts used by Theorems 2 and 3, and helper
//! queries on neighborhoods.

use crate::{Graph, NodeId};

/// Number of edges inside the neighborhood `N(v)`, i.e. `m(N(v))` in the
/// paper's notation.
///
/// Runs in `O(Σ_{u ∈ N(v)} d_u · log Δ)` time.
pub fn edges_in_neighborhood(g: &Graph, v: NodeId) -> usize {
    let nv = g.neighbors(v);
    let mut m = 0usize;
    for &u in nv {
        // Count neighbors of u that are also neighbors of v with id > u so
        // each edge is counted once.
        for &w in g.neighbors(u) {
            if w > u && nv.binary_search(&w).is_ok() {
                m += 1;
            }
        }
    }
    m
}

/// Global sparsity `ζ_v^{[Δ]}` of Definition 1:
/// `(1/Δ)·(binom(Δ,2) − m(N(v)))`.
pub fn global_sparsity(g: &Graph, v: NodeId) -> f64 {
    let delta = g.max_degree() as f64;
    if delta == 0.0 {
        return 0.0;
    }
    let m_nv = edges_in_neighborhood(g, v) as f64;
    (delta * (delta - 1.0) / 2.0 - m_nv) / delta
}

/// Local sparsity `ζ_v^{[d]}` of Definition 1:
/// `(1/d_v)·(binom(d_v,2) − m(N(v)))`.
pub fn local_sparsity(g: &Graph, v: NodeId) -> f64 {
    let d = g.degree(v) as f64;
    if d == 0.0 {
        return 0.0;
    }
    let m_nv = edges_in_neighborhood(g, v) as f64;
    (d * (d - 1.0) / 2.0 - m_nv) / d
}

/// Unevenness `η_v = Σ_{u∈N(v)} max(0, d_u − d_v)/(d_u + 1)` (Definition 5).
pub fn unevenness(g: &Graph, v: NodeId) -> f64 {
    let dv = g.degree(v) as f64;
    g.neighbors(v)
        .iter()
        .map(|&u| {
            let du = g.degree(u) as f64;
            (du - dv).max(0.0) / (du + 1.0)
        })
        .sum()
}

/// Number of triangles through the edge `{u, v}`; zero if the edge is absent.
///
/// A triangle through an edge is exactly a common neighbor of its endpoints
/// (§3.4 of the paper reduces local triangle finding to estimating
/// `|N(u) ∩ N(v)|`).
pub fn triangles_through_edge(g: &Graph, u: NodeId, v: NodeId) -> usize {
    if !g.has_edge(u, v) {
        return 0;
    }
    g.common_neighbors(u, v)
}

/// Total triangle count of the graph.
pub fn triangle_count(g: &Graph) -> usize {
    let mut t = 0usize;
    for (u, v) in g.edges() {
        t += g.common_neighbors(u, v);
    }
    // Each triangle has 3 edges, and is counted once per edge.
    t / 3
}

/// Number of four-cycles through the wedge `(u, v, u')` centered at `v`
/// (Theorem 3 counts, for a pair of edges `vu`, `vu'` incident on `v`, the
/// 4-cycles `v-u-w-u'-v`): this is `|N(u) ∩ N(u')| − 1` when `u, u'` have
/// `v` as common neighbor (excluding `v` itself closes no 4-cycle), clamped
/// at zero.
pub fn four_cycles_through_wedge(g: &Graph, v: NodeId, u: NodeId, u2: NodeId) -> usize {
    debug_assert!(g.has_edge(v, u) && g.has_edge(v, u2));
    let mut c = g.common_neighbors(u, u2);
    // `v` itself is a common neighbor of u and u2 but does not close a
    // 4-cycle with the wedge at v.
    c = c.saturating_sub(1);
    c
}

/// Per-node degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.n() {
        hist[g.degree(v as NodeId)] += 1;
    }
    hist
}

/// Average degree `2m/n` (0 for the empty graph).
pub fn average_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        2.0 * g.m() as f64 / g.n() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn complete(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    fn star(leaves: usize) -> Graph {
        let mut b = GraphBuilder::new(leaves + 1);
        for v in 1..=leaves as NodeId {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn clique_has_zero_local_sparsity() {
        let g = complete(8);
        for v in 0..8 {
            assert_eq!(local_sparsity(&g, v), 0.0);
            assert_eq!(global_sparsity(&g, v), 0.0);
        }
    }

    #[test]
    fn star_center_is_maximally_sparse() {
        let g = star(10);
        // Center: d = 10, no edges among leaves => ζ = (45 - 0)/10 = 4.5.
        assert_eq!(local_sparsity(&g, 0), 4.5);
        // A leaf: d = 1, binom(1,2)=0 => ζ = 0.
        assert_eq!(local_sparsity(&g, 1), 0.0);
    }

    #[test]
    fn global_sparsity_uses_max_degree() {
        let g = star(10);
        // Δ = 10 for every node; leaf v has m(N(v)) = 0.
        let expected = (10.0 * 9.0 / 2.0) / 10.0;
        assert_eq!(global_sparsity(&g, 1), expected);
    }

    #[test]
    fn edges_in_neighborhood_of_clique_member() {
        let g = complete(5);
        // N(v) is a K4: 6 edges.
        assert_eq!(edges_in_neighborhood(&g, 0), 6);
    }

    #[test]
    fn triangle_counting() {
        let g = complete(4);
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(triangles_through_edge(&g, 0, 1), 2);
        assert_eq!(triangles_through_edge(&g, 0, 0), 0);
    }

    #[test]
    fn no_triangles_in_star() {
        let g = star(6);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn four_cycles_in_k23() {
        // K_{2,3}: parts {0,1}, {2,3,4}. Wedge (2, 0, 3) centered at 0:
        // common neighbors of 2 and 3 are {0,1}; minus center = 1 four-cycle.
        let mut b = GraphBuilder::new(5);
        for u in [0u32, 1] {
            for v in [2u32, 3, 4] {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        assert_eq!(four_cycles_through_wedge(&g, 0, 2, 3), 1);
    }

    #[test]
    fn unevenness_of_star_leaf() {
        let g = star(9);
        // Leaf degree 1, center degree 9: η = (9-1)/10 = 0.8.
        assert!((unevenness(&g, 1) - 0.8).abs() < 1e-12);
        assert_eq!(unevenness(&g, 0), 0.0);
    }

    #[test]
    fn histogram_and_average() {
        let g = star(4);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert!((average_degree(&g) - 8.0 / 5.0).abs() < 1e-12);
    }
}
