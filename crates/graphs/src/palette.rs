//! List assignments for the (degree+1)-list-coloring problem and coloring
//! validation.
//!
//! In D1LC every node `v` receives a list of `d_v + 1` colors from an
//! arbitrary color space and must pick a list color distinct from all
//! neighbors' picks. The generators here produce the list regimes the
//! experiments need: plain `[d_v+1]` lists (the D1C problem of Corollary 1),
//! `[Δ+1]` lists, random lists from a large space (true list coloring), and
//! adversarially overlapping lists.

use crate::{Color, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A list assignment: one sorted color list per node, plus the declared
/// bit-width of the color space (how many bits sending one raw color costs
/// in CONGEST).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListAssignment {
    lists: Vec<Vec<Color>>,
    color_bits: u32,
}

impl ListAssignment {
    /// Build from raw lists. Lists are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any color needs more than `color_bits` bits.
    pub fn new(mut lists: Vec<Vec<Color>>, color_bits: u32) -> Self {
        assert!(color_bits <= 64, "color_bits must be ≤ 64");
        for list in &mut lists {
            list.sort_unstable();
            list.dedup();
            if let Some(&max) = list.last() {
                let need = 64 - max.leading_zeros();
                assert!(need <= color_bits, "color {max} exceeds {color_bits} bits");
            }
        }
        ListAssignment { lists, color_bits }
    }

    /// The list of node `v`.
    pub fn list(&self, v: NodeId) -> &[Color] {
        &self.lists[v as usize]
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.lists.len()
    }

    /// Declared bit-width of the color space.
    pub fn color_bits(&self) -> u32 {
        self.color_bits
    }

    /// Whether this is a valid *(degree+1)*-list assignment for `g`:
    /// every node has at least `d_v + 1` colors.
    pub fn is_degree_plus_one(&self, g: &Graph) -> bool {
        self.lists.len() == g.n() && (0..g.n()).all(|v| self.lists[v].len() > g.degree(v as NodeId))
    }

    /// Consume into the raw lists.
    pub fn into_lists(self) -> Vec<Vec<Color>> {
        self.lists
    }
}

/// D1C lists: node `v` gets `{0, 1, …, d_v}` (Corollary 1's instance).
pub fn degree_plus_one_lists(g: &Graph) -> ListAssignment {
    let lists = (0..g.n())
        .map(|v| (0..=g.degree(v as NodeId) as Color).collect())
        .collect();
    let delta = g.max_degree() as u64 + 1;
    ListAssignment::new(lists, bits_for(delta))
}

/// (Δ+1)-coloring lists: every node gets `{0, …, Δ}`.
pub fn delta_plus_one_lists(g: &Graph) -> ListAssignment {
    let delta = g.max_degree();
    let lists = (0..g.n()).map(|_| (0..=delta as Color).collect()).collect();
    ListAssignment::new(lists, bits_for(delta as u64 + 1))
}

/// Random D1LC lists: node `v` gets `d_v + 1 + extra` distinct uniform
/// colors from the space `[0, 2^color_bits)`.
///
/// This is the regime where the paper's hashing machinery is essential:
/// colors are much larger than degrees, and naive color exchange costs
/// `color_bits` per color.
///
/// # Panics
///
/// Panics if the color space is too small to give every node a list.
pub fn random_lists(g: &Graph, color_bits: u32, extra: usize, seed: u64) -> ListAssignment {
    assert!(
        color_bits <= 63,
        "random_lists supports color spaces up to 2^63"
    );
    let space = 1u64 << color_bits;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lists = Vec::with_capacity(g.n());
    for v in 0..g.n() {
        let want = g.degree(v as NodeId) + 1 + extra;
        assert!(
            (want as u64) <= space,
            "color space 2^{color_bits} too small for list of size {want}"
        );
        let mut set = HashSet::with_capacity(want);
        while set.len() < want {
            set.insert(rng.gen_range(0..space));
        }
        let mut list: Vec<Color> = set.into_iter().collect();
        list.sort_unstable();
        lists.push(list);
    }
    ListAssignment::new(lists, color_bits)
}

/// Adversarial overlapping lists: all nodes draw from a narrow shared window
/// of size `window` (at least the maximum needed list size), so lists
/// overlap heavily and color competition is maximal.
pub fn shared_window_lists(g: &Graph, window: u64, seed: u64) -> ListAssignment {
    let need = g.max_degree() as u64 + 1;
    assert!(window >= need, "window {window} smaller than Δ+1 = {need}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lists = Vec::with_capacity(g.n());
    for v in 0..g.n() {
        let want = g.degree(v as NodeId) + 1;
        let mut set = HashSet::with_capacity(want);
        while set.len() < want {
            set.insert(rng.gen_range(0..window));
        }
        let mut list: Vec<Color> = set.into_iter().collect();
        list.sort_unstable();
        lists.push(list);
    }
    ListAssignment::new(lists, bits_for(window))
}

/// A complete coloring: one color per node.
pub type Coloring = Vec<Color>;

/// Error describing why a coloring is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColoringError {
    /// The coloring has the wrong number of entries.
    WrongLength {
        /// Entries provided.
        got: usize,
        /// Entries expected (`g.n()`).
        expected: usize,
    },
    /// A node used a color outside its list.
    NotInList {
        /// The offending node.
        node: NodeId,
        /// The color it used.
        color: Color,
    },
    /// Two adjacent nodes share a color.
    Conflict {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The shared color.
        color: Color,
    },
}

impl std::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringError::WrongLength { got, expected } => {
                write!(f, "coloring has {got} entries, expected {expected}")
            }
            ColoringError::NotInList { node, color } => {
                write!(f, "node {node} used color {color} outside its list")
            }
            ColoringError::Conflict { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} share color {color}")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// Verify that `coloring` is a proper list-coloring of `g` under `lists`.
///
/// # Errors
///
/// Returns the first violation found: wrong length, a color outside its
/// node's list, or a monochromatic edge.
pub fn check_coloring(
    g: &Graph,
    lists: &ListAssignment,
    coloring: &[Color],
) -> Result<(), ColoringError> {
    if coloring.len() != g.n() {
        return Err(ColoringError::WrongLength {
            got: coloring.len(),
            expected: g.n(),
        });
    }
    for (v, &c) in coloring.iter().enumerate() {
        if lists.list(v as NodeId).binary_search(&c).is_err() {
            return Err(ColoringError::NotInList {
                node: v as NodeId,
                color: c,
            });
        }
    }
    for (u, v) in g.edges() {
        if coloring[u as usize] == coloring[v as usize] {
            return Err(ColoringError::Conflict {
                u,
                v,
                color: coloring[u as usize],
            });
        }
    }
    Ok(())
}

/// Bits needed to represent values in `[0, space)`.
fn bits_for(space: u64) -> u32 {
    64 - space.saturating_sub(1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn d1c_lists_have_right_sizes() {
        let g = gen::star(5);
        let lists = degree_plus_one_lists(&g);
        assert!(lists.is_degree_plus_one(&g));
        assert_eq!(lists.list(0).len(), 6);
        assert_eq!(lists.list(1).len(), 2);
    }

    #[test]
    fn delta_lists_uniform() {
        let g = gen::star(5);
        let lists = delta_plus_one_lists(&g);
        assert_eq!(lists.list(3), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_lists_are_d1lc() {
        let g = gen::gnp(50, 0.2, 3);
        let lists = random_lists(&g, 40, 0, 7);
        assert!(lists.is_degree_plus_one(&g));
        assert_eq!(lists.color_bits(), 40);
    }

    #[test]
    fn shared_window_lists_are_d1lc() {
        let g = gen::gnp(40, 0.3, 5);
        let window = g.max_degree() as u64 + 4;
        let lists = shared_window_lists(&g, window, 2);
        assert!(lists.is_degree_plus_one(&g));
        for v in 0..g.n() as NodeId {
            assert!(lists.list(v).iter().all(|&c| c < window));
        }
    }

    #[test]
    fn check_coloring_accepts_valid() {
        let g = gen::cycle(4);
        let lists = degree_plus_one_lists(&g);
        let coloring = vec![0, 1, 0, 1];
        assert_eq!(check_coloring(&g, &lists, &coloring), Ok(()));
    }

    #[test]
    fn check_coloring_rejects_conflict() {
        let g = gen::path(2);
        let lists = degree_plus_one_lists(&g);
        let err = check_coloring(&g, &lists, &[1, 1]).unwrap_err();
        assert!(matches!(err, ColoringError::Conflict { color: 1, .. }));
    }

    #[test]
    fn check_coloring_rejects_off_list() {
        let g = gen::path(2);
        let lists = degree_plus_one_lists(&g);
        let err = check_coloring(&g, &lists, &[9, 0]).unwrap_err();
        assert!(matches!(
            err,
            ColoringError::NotInList { node: 0, color: 9 }
        ));
    }

    #[test]
    fn check_coloring_rejects_wrong_length() {
        let g = gen::path(3);
        let lists = degree_plus_one_lists(&g);
        let err = check_coloring(&g, &lists, &[0]).unwrap_err();
        assert!(matches!(
            err,
            ColoringError::WrongLength {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn lists_deduplicate() {
        let la = ListAssignment::new(vec![vec![3, 1, 3, 2]], 8);
        assert_eq!(la.list(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_colors_too_wide() {
        let _ = ListAssignment::new(vec![vec![256]], 8);
    }
}
