//! Pseudorandomness toolkit for the congest-coloring reproduction.
//!
//! Implements every pseudorandom object the paper uses:
//!
//! * [`RepHashFamily`] / [`RepHash`] — *representative hash functions*
//!   (Lemma 1), the paper's central construct, together with the set
//!   operators of Proposition 1 (`A|_h^{≤σ}`, `A ∧_h^{≤σ} B`,
//!   `A ¬_h^{≤σ} B`);
//! * [`RepParams`] — the Lemma 1 parameter derivations (verbatim paper
//!   constants and a laptop-scale profile);
//! * [`PairwiseFamily`] — explicit ε-almost pairwise-independent hashing
//!   over the Mersenne prime 2⁶¹−1 (§5.1);
//! * [`ColorHashFamily`] — approximately-universal hashing for large color
//!   spaces (Appendix D.3);
//! * [`MultisetSampler`] — representative multisets via averaging samplers
//!   (Appendix B);
//! * [`ReedSolomon`] / [`IdCode`] — GF(2⁸) Reed–Solomon and the
//!   concatenated identifier code used by uniform ε-Buddy (§5.2);
//! * [`mix`] — the 64-bit mixing primitives all seeded families derive
//!   from.
//!
//! # Example
//!
//! ```
//! use prand::{RepHashFamily, RepParams};
//!
//! // A family suitable for MultiTrial over a palette of ~100 colors.
//! let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
//! let family = RepHashFamily::new(0xc0ffee, params);
//! let h = family.member(31);
//! let palette: Vec<u64> = (0..100).map(|i| i * 1_000_003).collect();
//! // Colors the node may safely describe in σ bits:
//! let candidates = h.isolated(&palette, &palette);
//! assert!(!candidates.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ecc;
pub mod field;
pub mod mix;
pub mod pairwise;
pub mod params;
pub mod rep_hash;
pub mod sampler;
pub mod universal;

pub use ecc::{IdCode, InnerCode, ReedSolomon};
pub use field::Gf256;
pub use mix::mix64;
pub use pairwise::{PairwiseFamily, PairwiseHash, P61};
pub use params::RepParams;
pub use rep_hash::{bitmap_get, RepHash, RepHashFamily};
pub use sampler::MultisetSampler;
pub use universal::{ColorHash, ColorHashFamily};
