//! Error-correcting codes for the uniform ε-Buddy procedure (§5.2).
//!
//! Alg. 6 encodes node identifiers with a code of parameters
//! `[3b, b, b/2]` so that *distinct* identifiers differ in a constant
//! fraction of their bits, which turns "the hashed neighborhoods agree but
//! the hash had collisions" into a large measurable Hamming distance.
//!
//! Construction: a Reed–Solomon outer code over GF(2⁸) (distance
//! `n − k + 1` symbols) concatenated with a nonlinear inner code mapping
//! each byte to a 16-bit codeword with pairwise distance ≥ 5 (greedy
//! lexicographic construction, verified in tests). For the default
//! parameters (`k = 8` message bytes = 64-bit IDs, `n = 24` code symbols)
//! two distinct IDs differ in ≥ 17 symbols, hence in
//! ≥ 17·5 = 85 bits out of 384 — a `≥ 22%` relative distance, comfortably
//! a "constant fraction" for the Alg. 6 threshold test.

use crate::field::Gf256;

/// A Reed–Solomon code over GF(2⁸): `k` message bytes encoded as the
/// evaluations of the message polynomial at `n` fixed points.
///
/// # Example
///
/// ```
/// use prand::ReedSolomon;
///
/// let rs = ReedSolomon::new(24, 8);
/// let a = rs.encode(&42u64.to_le_bytes());
/// let b = rs.encode(&43u64.to_le_bytes());
/// let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
/// assert!(differing >= 24 - 8 + 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
}

impl ReedSolomon {
    /// An `[n, k]` RS code (distance `n − k + 1` symbols).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k ≤ n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(
            k > 0 && k <= n && n <= 255,
            "invalid RS parameters [{n}, {k}]"
        );
        ReedSolomon { n, k }
    }

    /// Code length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimum distance `n − k + 1` in symbols.
    pub fn distance(&self) -> usize {
        self.n - self.k + 1
    }

    /// Encode exactly `k` message bytes into `n` code symbols.
    ///
    /// # Panics
    ///
    /// Panics if `msg.len() != k`.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        assert_eq!(
            msg.len(),
            self.k,
            "message must have exactly k = {} bytes",
            self.k
        );
        let f = Gf256::get();
        // Evaluation points 1, g, g², … (all distinct, nonzero).
        (0..self.n)
            .map(|i| {
                let x = f.pow(0x03, i as u32);
                f.eval_poly(msg, x)
            })
            .collect()
    }
}

/// Inner code: 256 codewords of 16 bits with pairwise Hamming distance ≥ 5,
/// built greedily (first-fit over lexicographic 16-bit words). Deterministic
/// and verified in tests.
#[derive(Debug)]
pub struct InnerCode {
    words: [u16; 256],
}

static INNER: std::sync::OnceLock<InnerCode> = std::sync::OnceLock::new();

impl InnerCode {
    /// The shared inner-code instance.
    pub fn get() -> &'static InnerCode {
        INNER.get_or_init(InnerCode::build)
    }

    fn build() -> InnerCode {
        let mut words = [0u16; 256];
        let mut count = 0usize;
        let mut candidate: u32 = 0;
        while count < 256 {
            let w = candidate as u16;
            if words[..count].iter().all(|&u| (u ^ w).count_ones() >= 5) {
                words[count] = w;
                count += 1;
            }
            candidate += 1;
            assert!(
                candidate <= u16::MAX as u32 + 1,
                "inner code construction failed"
            );
        }
        InnerCode { words }
    }

    /// The 16-bit codeword of byte `b`.
    #[inline]
    pub fn encode(&self, b: u8) -> u16 {
        self.words[b as usize]
    }
}

/// The concatenated identifier code of Alg. 6: RS[24, 8] ∘ inner, mapping
/// a 64-bit ID to 384 bits with relative distance ≥ 85/384.
#[derive(Clone, Copy, Debug)]
pub struct IdCode {
    rs: ReedSolomon,
}

impl Default for IdCode {
    fn default() -> Self {
        Self::new()
    }
}

impl IdCode {
    /// The default `[384, 64, ≥85]`-bit identifier code.
    pub fn new() -> Self {
        IdCode {
            rs: ReedSolomon::new(24, 8),
        }
    }

    /// Codeword length in bits.
    pub fn bits(&self) -> usize {
        self.rs.n() * 16
    }

    /// Guaranteed minimum distance in bits between distinct codewords.
    pub fn min_distance_bits(&self) -> usize {
        self.rs.distance() * 5
    }

    /// Encode a 64-bit identifier into a packed bit vector
    /// (`bits()/64` words, LSB-first).
    pub fn encode(&self, id: u64) -> Vec<u64> {
        let symbols = self.rs.encode(&id.to_le_bytes());
        let inner = InnerCode::get();
        let nbits = self.bits();
        let mut out = vec![0u64; nbits.div_ceil(64)];
        for (s, &sym) in symbols.iter().enumerate() {
            let w = inner.encode(sym) as u64;
            for b in 0..16 {
                if w & (1 << b) != 0 {
                    let pos = s * 16 + b;
                    out[pos / 64] |= 1 << (pos % 64);
                }
            }
        }
        out
    }

    /// Bit `i` of a packed codeword.
    pub fn bit(word: &[u64], i: usize) -> bool {
        word[i / 64] & (1 << (i % 64)) != 0
    }

    /// Hamming distance between two packed codewords.
    pub fn hamming(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_distance_on_near_messages() {
        let rs = ReedSolomon::new(24, 8);
        let a = rs.encode(&1u64.to_le_bytes());
        for other in [2u64, 3, 255, 256, u64::MAX] {
            let b = rs.encode(&other.to_le_bytes());
            let d = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert!(
                d >= rs.distance(),
                "distance {d} < {} for id {other}",
                rs.distance()
            );
        }
    }

    #[test]
    fn rs_is_deterministic_and_injective_on_sample() {
        let rs = ReedSolomon::new(12, 4);
        let mut seen = std::collections::HashSet::new();
        for m in 0u32..500 {
            let cw = rs.encode(&m.to_le_bytes());
            assert!(seen.insert(cw.clone()), "codeword collision at {m}");
            assert_eq!(cw, rs.encode(&m.to_le_bytes()));
        }
    }

    #[test]
    #[should_panic(expected = "exactly k")]
    fn rs_rejects_wrong_length() {
        let rs = ReedSolomon::new(10, 4);
        let _ = rs.encode(&[1, 2, 3]);
    }

    #[test]
    fn inner_code_has_distance_5() {
        let c = InnerCode::get();
        for a in 0u16..=255 {
            for b in (a + 1)..=255 {
                let d = (c.encode(a as u8) ^ c.encode(b as u8)).count_ones();
                assert!(d >= 5, "inner distance {d} between {a} and {b}");
            }
        }
    }

    #[test]
    fn id_code_distance() {
        let code = IdCode::new();
        let a = code.encode(0xdead_beef);
        for other in [0xdead_beee_u64, 0, u64::MAX, 0xdead_beef + (1 << 40)] {
            let b = code.encode(other);
            let d = IdCode::hamming(&a, &b);
            assert!(
                d >= code.min_distance_bits(),
                "distance {d} < {} vs {other:x}",
                code.min_distance_bits()
            );
        }
        assert_eq!(IdCode::hamming(&a, &code.encode(0xdead_beef)), 0);
    }

    #[test]
    fn id_code_relative_distance_exceeds_one_fifth() {
        let code = IdCode::new();
        assert!(code.min_distance_bits() as f64 / code.bits() as f64 > 0.2);
    }

    #[test]
    fn bit_accessor_matches_encoding() {
        let code = IdCode::new();
        let w = code.encode(12345);
        let ones: usize = w.iter().map(|x| x.count_ones() as usize).sum();
        let via_bits = (0..code.bits()).filter(|&i| IdCode::bit(&w, i)).count();
        assert_eq!(ones, via_bits);
    }
}
