//! Parameter derivations for representative hash families (Lemma 1).
//!
//! Lemma 1 of the paper: for `α ≤ β`, `ν ∈ (0,1)` and
//! `λ ≥ max(45α⁻¹, 3α⁻¹β⁻²)·ln(12/ν)`, there is a family of
//! `F = Θ(βλν⁻¹·log|U|)` hash functions `U → [λ]` and a window
//! `σ = Θ(β⁻²α⁻¹·log(1/ν))` such that for all `A, B ⊆ U` with
//! `|A|,|B| ≤ βλ`, at least a `(1−ν)` fraction of the family is
//! `(A,B)`-good.
//!
//! [`RepParams::from_lemma1`] computes the verbatim constants from the
//! proof. They are engineered for asymptotics and are enormous at laptop
//! scale (σ in the thousands of bits), so the simulation-facing
//! constructor [`RepParams::practical`] keeps the *formulas* (σ and the
//! family-index width scale with `log n`; λ scales with the set sizes) but
//! with constants suited to `n ≤ 10^5`. Experiment E10 measures how good
//! the practical parameters actually are.

/// Parameters identifying a representative hash family: output range `[λ]`,
/// observation window `σ ≤ λ`, and family size `F`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepParams {
    /// Accuracy parameter `α` (lower bound scale for "large" sets).
    pub alpha: f64,
    /// Accuracy parameter `β` (relative error; `α ≤ β`).
    pub beta: f64,
    /// Failure parameter `ν`: at most a `ν` fraction of the family may be
    /// bad for any fixed pair `(A, B)`.
    pub nu: f64,
    /// Hash output range: functions map into `[0, λ)`.
    pub lambda: u64,
    /// Observation window: the algorithms only look at hash values `< σ`.
    pub sigma: u64,
    /// Family size `F`; indices take `⌈log₂ F⌉` bits to communicate.
    pub family_size: u64,
}

impl RepParams {
    /// The verbatim constants from the proof of Lemma 1 / Claim 1.
    ///
    /// * `λ = ⌈max(45/α, 3/(αβ²))·ln(12/ν)⌉` (the lemma's lower bound,
    ///   taken with equality),
    /// * `σ = ⌈max(3/(αβ²)·ln(8/ν), 45/(αβ)·ln(12/ν))⌉` — the three
    ///   window constraints appearing in the proof,
    /// * `F = ⌈24βλ/ν · ln|U|⌉ + 1` from the union bound over
    ///   `|U|^{4βλ}` pairs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α ≤ β < 1` and `0 < ν < 1`.
    pub fn from_lemma1(alpha: f64, beta: f64, nu: f64, universe_bits: u32) -> Self {
        validate(alpha, beta, nu);
        let ln12 = (12.0 / nu).ln();
        let ln8 = (8.0 / nu).ln();
        let lambda = ((45.0 / alpha).max(3.0 / (alpha * beta * beta)) * ln12).ceil() as u64;
        let sigma_f = (3.0 / (alpha * beta * beta) * ln8)
            .max(45.0 / (alpha * beta) * ln12)
            .max(45.0 / beta * ln12);
        let sigma = (sigma_f.ceil() as u64).min(lambda);
        let ln_u = (universe_bits as f64) * std::f64::consts::LN_2;
        let family_size = (24.0 * beta * lambda as f64 / nu * ln_u.max(1.0)).ceil() as u64 + 1;
        RepParams {
            alpha,
            beta,
            nu,
            lambda,
            sigma,
            family_size,
        }
    }

    /// Simulation-scale parameters: caller chooses `λ` (typically
    /// `Θ(max(|A|,|B|)/β)` as the algorithms require) and a window `σ`
    /// proportional to the bandwidth (`Θ(log n)`); the family size is fixed
    /// at `2^family_bits` so a member index costs `family_bits` bits.
    ///
    /// The advertised `ν` is computed back from σ via the Chernoff form of
    /// Claim 1 (`ν ≈ 12·exp(−σ·αβ²/3)`), clamped to `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α ≤ β < 1`, `σ ≤ λ` and `λ > 0`.
    pub fn practical(alpha: f64, beta: f64, lambda: u64, sigma: u64, family_bits: u32) -> Self {
        assert!(lambda > 0, "lambda must be positive");
        assert!(
            sigma <= lambda,
            "sigma ({sigma}) must not exceed lambda ({lambda})"
        );
        assert!(family_bits <= 62, "family_bits too large");
        let nu_raw = 12.0 * (-(sigma as f64) * alpha * beta * beta / 3.0).exp();
        let nu = nu_raw.clamp(1e-300, 0.999_999);
        validate(alpha, beta, nu);
        RepParams {
            alpha,
            beta,
            nu,
            lambda,
            sigma,
            family_size: 1u64 << family_bits,
        }
    }

    /// Bits required to communicate a member index: `⌈log₂ F⌉`.
    pub fn index_bits(&self) -> u32 {
        64 - self.family_size.saturating_sub(1).leading_zeros()
    }

    /// The largest set size `⌊βλ⌋` the Lemma 1 guarantees cover.
    pub fn max_set_size(&self) -> u64 {
        (self.beta * self.lambda as f64).floor() as u64
    }

    /// The "large set" threshold `αλ` below which the alternative bounds of
    /// Lemma 1 apply.
    pub fn large_set_threshold(&self) -> f64 {
        self.alpha * self.lambda as f64
    }
}

fn validate(alpha: f64, beta: f64, nu: f64) {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    assert!(
        beta > 0.0 && beta < 1.0,
        "beta must be in (0,1), got {beta}"
    );
    assert!(
        alpha <= beta,
        "alpha ({alpha}) must not exceed beta ({beta})"
    );
    assert!(nu > 0.0 && nu < 1.0, "nu must be in (0,1), got {nu}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_satisfies_its_own_bounds() {
        let p = RepParams::from_lemma1(1.0 / 12.0, 1.0 / 3.0, 0.01, 64);
        // λ ≥ max(45/α, 3/(αβ²))·ln(12/ν)
        let bound = (45.0 * 12.0f64).max(3.0 * 12.0 * 9.0) * (12.0 / 0.01f64).ln();
        assert!(p.lambda as f64 >= bound.floor());
        assert!(p.sigma <= p.lambda);
        assert!(p.family_size > p.lambda, "F should dominate λ here");
    }

    #[test]
    fn paper_constants_are_large() {
        // Document the scale: with the multitrial constants and ν = n⁻³ at
        // n = 10⁴ the window is in the thousands — exactly why the
        // practical profile exists.
        let nu = 1e-12;
        let p = RepParams::from_lemma1(1.0 / 12.0, 1.0 / 3.0, nu, 64);
        assert!(p.sigma > 1000);
    }

    #[test]
    fn practical_roundtrip() {
        let p = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
        assert_eq!(p.lambda, 600);
        assert_eq!(p.sigma, 96);
        assert_eq!(p.family_size, 1 << 16);
        assert_eq!(p.index_bits(), 16);
        assert!(p.nu < 1.0);
    }

    #[test]
    fn index_bits_exact_powers() {
        let p = RepParams::practical(0.1, 0.2, 100, 10, 10);
        assert_eq!(p.index_bits(), 10);
    }

    #[test]
    fn max_set_size_is_beta_lambda() {
        let p = RepParams::practical(0.1, 0.25, 400, 64, 12);
        assert_eq!(p.max_set_size(), 100);
        assert_eq!(p.large_set_threshold(), 40.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_above_beta() {
        let _ = RepParams::from_lemma1(0.5, 0.1, 0.01, 32);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_sigma_above_lambda() {
        let _ = RepParams::practical(0.1, 0.2, 10, 11, 4);
    }
}
