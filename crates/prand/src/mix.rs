//! 64-bit mixing primitives used to derive seeded hash families.
//!
//! All the pseudorandom objects in this crate are *seeded*: a family is
//! identified by a small seed, and member `i` applied to input `x` is a
//! deterministic mix of `(seed, i, x)`. The mixer is the finalizer of
//! SplitMix64 / MurmurHash3, a full-avalanche bijection on `u64`.

/// SplitMix64 / Murmur3 finalizer: a bijective full-avalanche mix of `x`.
///
/// # Example
///
/// ```
/// use prand::mix::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix two words into one.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Mix three words into one.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix64(a ^ mix64(b ^ mix64(c)))
}

/// Mix four words into one.
#[inline]
pub fn mix4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix64(a ^ mix64(b ^ mix64(c ^ mix64(d))))
}

/// Map a uniformly mixed word to `[0, bound)` without modulo bias, using
/// the widening-multiply trick.
///
/// # Panics
///
/// Panics if `bound == 0`.
#[inline]
pub fn bounded(word: u64, bound: u64) -> u64 {
    assert!(bound > 0, "bound must be positive");
    (((word as u128) * (bound as u128)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
    }

    #[test]
    fn mix_order_matters() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix3(1, 2, 3), mix3(3, 2, 1));
    }

    #[test]
    fn bounded_in_range() {
        for i in 0..1000u64 {
            let v = bounded(mix64(i), 17);
            assert!(v < 17);
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let bound = 8u64;
        let mut counts = vec![0usize; bound as usize];
        let samples = 80_000u64;
        for i in 0..samples {
            counts[bounded(mix64(i), bound) as usize] += 1;
        }
        let expected = samples as f64 / bound as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 0.05 * expected,
                "bucket count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn bounded_rejects_zero() {
        let _ = bounded(1, 0);
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = 0xdead_beef_cafe_f00du64;
        for bit in 0..64 {
            let d = (mix64(x) ^ mix64(x ^ (1 << bit))).count_ones();
            assert!((16..=48).contains(&d), "weak avalanche on bit {bit}: {d}");
        }
    }
}
