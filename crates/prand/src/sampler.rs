//! Representative multisets via averaging samplers (Appendix B).
//!
//! A `(δ, ε)`-averaging sampler `Samp : [N] → [M]^t` guarantees that for
//! every function `f : [M] → [0,1]`, the average of `f` over the sampled
//! multiset is within `ε` of its average over `[M]`, except with
//! probability `δ` over the choice of seed (Definition 3).
//!
//! The paper invokes *explicit* samplers using `N = Θ(log n)` random bits
//! that sample `t = Θ(log|C| + log n)` elements. **Substitution:** the
//! citation chain bottoms out in expander-walk constructions; we realize
//! the same interface with a *seeded multiset* — element `j` of seed `s` is
//! `mix(seed, s, j) mod M` — which uses the same `Θ(log n)` seed bits and
//! satisfies the averaging property by Chernoff for each fixed `f` (the
//! full-universality of expanders is not needed by any of our callers, who
//! always apply the sampler to one adversary-independent `f` per
//! invocation). The sampler property is verified statistically in tests
//! and in experiment E12.

use crate::mix::{bounded, mix4};
use rand::Rng;

/// A seeded family of multisets over `[0, M)`, each of size `t`, indexed by
/// `N = 2^seed_bits` seeds.
///
/// # Example
///
/// ```
/// use prand::MultisetSampler;
///
/// let sampler = MultisetSampler::new(7, 1000, 64, 16);
/// let elems: Vec<u64> = sampler.multiset(3).collect();
/// assert_eq!(elems.len(), 64);
/// assert!(elems.iter().all(|&e| e < 1000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultisetSampler {
    family_seed: u64,
    m: u64,
    t: u32,
    seed_bits: u32,
}

impl MultisetSampler {
    /// Sampler over domain `[0, m)` producing multisets of size `t`,
    /// with `2^seed_bits` possible seeds.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `t == 0` or `seed_bits > 62`.
    pub fn new(family_seed: u64, m: u64, t: u32, seed_bits: u32) -> Self {
        assert!(m > 0, "domain size must be positive");
        assert!(t > 0, "multiset size must be positive");
        assert!(seed_bits <= 62, "seed_bits too large");
        MultisetSampler {
            family_seed,
            m,
            t,
            seed_bits,
        }
    }

    /// Domain size `M`.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Multiset size `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// Bits needed to communicate a seed (`N = 2^seed_bits`).
    pub fn seed_bits(&self) -> u32 {
        self.seed_bits
    }

    /// Number of seeds `N`.
    pub fn num_seeds(&self) -> u64 {
        1u64 << self.seed_bits
    }

    /// The multiset selected by `seed`, as an iterator of `t` elements of
    /// `[0, M)` (duplicates possible — it is a multiset).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is out of range.
    pub fn multiset(&self, seed: u64) -> impl Iterator<Item = u64> + '_ {
        assert!(seed < self.num_seeds(), "seed {seed} out of range");
        let fam = self.family_seed;
        let m = self.m;
        (0..self.t as u64).map(move |j| bounded(mix4(fam, seed, j, 0x5a3e_1e77), m))
    }

    /// Element `j` of the multiset selected by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed` or `j` is out of range.
    pub fn element(&self, seed: u64, j: u32) -> u64 {
        assert!(seed < self.num_seeds(), "seed {seed} out of range");
        assert!(j < self.t, "position {j} out of range");
        bounded(mix4(self.family_seed, seed, j as u64, 0x5a3e_1e77), self.m)
    }

    /// Draw a uniform seed.
    pub fn sample_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.num_seeds())
    }

    /// Empirical average of `f` over the multiset selected by `seed`
    /// (the quantity Definition 3 controls).
    pub fn average<F: FnMut(u64) -> f64>(&self, seed: u64, mut f: F) -> f64 {
        let sum: f64 = self.multiset(seed).map(&mut f).sum();
        sum / self.t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_is_deterministic() {
        let s = MultisetSampler::new(3, 500, 32, 10);
        let a: Vec<u64> = s.multiset(5).collect();
        let b: Vec<u64> = s.multiset(5).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = s.multiset(6).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn element_matches_multiset() {
        let s = MultisetSampler::new(9, 100, 16, 8);
        let elems: Vec<u64> = s.multiset(2).collect();
        for (j, &e) in elems.iter().enumerate() {
            assert_eq!(s.element(2, j as u32), e);
        }
    }

    #[test]
    fn averaging_property_holds_for_most_seeds() {
        // f = indicator of [0, M/4): true average 0.25. With t = 256, the
        // additive error should be < 0.1 for almost all seeds.
        let s = MultisetSampler::new(11, 10_000, 256, 10);
        let f = |x: u64| if x < 2500 { 1.0 } else { 0.0 };
        let mut bad = 0;
        for seed in 0..s.num_seeds() {
            if (s.average(seed, f) - 0.25).abs() > 0.1 {
                bad += 1;
            }
        }
        let frac = bad as f64 / s.num_seeds() as f64;
        assert!(frac < 0.01, "{bad} bad seeds ({frac})");
    }

    #[test]
    fn hits_large_subsets() {
        // A subset of density 1/8 should be hit by a t = 64 multiset for
        // almost every seed (the "hitting sampler" use in Uniform
        // MultiTrial).
        let s = MultisetSampler::new(13, 4096, 64, 10);
        let in_subset = |x: u64| x.is_multiple_of(8);
        let misses = (0..s.num_seeds())
            .filter(|&seed| !s.multiset(seed).any(in_subset))
            .count();
        assert!(misses < 5, "{misses} seeds missed a density-1/8 subset");
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn rejects_out_of_range_seed() {
        let s = MultisetSampler::new(1, 10, 4, 4);
        let _ = s.multiset(16).count();
    }
}
