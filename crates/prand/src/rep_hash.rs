//! Representative hash function families (Lemma 1) and the set operators of
//! Proposition 1.
//!
//! # Simulated advice
//!
//! Lemma 1 is an existence result: *some* family of
//! `F = Θ(βλν⁻¹ log|U|)` functions is representative, and the paper's
//! non-uniform algorithms assume nodes share such a family as advice. We
//! realize the advice as a **seeded pseudorandom family**: member `i` of
//! family `(seed, λ)` hashes `x` to `mix64(seed, λ, i, x) mod λ`. A
//! uniformly random family is representative with overwhelming probability
//! (this is exactly how Lemma 1 is proven), so the seeded family preserves
//! the statistical behaviour the algorithms rely on, and the communication
//! cost is unchanged — nodes exchange the `⌈log₂ F⌉`-bit member index.
//! Experiment E10 validates the `(A,B)`-good fraction empirically.
//!
//! # Notation (§3.1 of the paper)
//!
//! For a hash function `h`, sets `A, B ⊆ U` and window `σ`:
//!
//! * `A|_h^{≤σ}`   — elements of `A` hashing below `σ` ([`RepHash::low`]);
//! * `A ∧_h^{≤σ} B` — elements of `A|_h^{≤σ}` in collision with some
//!   *other* element of `B` ([`RepHash::colliding`]);
//! * `A ¬_h^{≤σ} B` — elements of `A|_h^{≤σ}` whose hash no other element
//!   of `B` shares ([`RepHash::isolated`]).

use crate::mix::{bounded, mix4};
use crate::params::RepParams;
use rand::Rng;
use std::collections::HashMap;

/// A seeded representative hash family `H = (h_i)_{i∈[F]} ⊆ [λ]^U`.
///
/// # Example
///
/// ```
/// use prand::{RepHashFamily, RepParams};
///
/// let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
/// let family = RepHashFamily::new(42, params);
/// let h = family.member(7);
/// let a: Vec<u64> = (0..100).collect();
/// // Elements of `a` hashing into the window, without collisions inside `a`:
/// let isolated = h.isolated(&a, &a);
/// assert!(isolated.iter().all(|x| a.contains(x)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepHashFamily {
    seed: u64,
    params: RepParams,
}

impl RepHashFamily {
    /// The family identified by `seed` with the given parameters.
    pub fn new(seed: u64, params: RepParams) -> Self {
        RepHashFamily { seed, params }
    }

    /// The family's parameters.
    pub fn params(&self) -> &RepParams {
        &self.params
    }

    /// Member `index` of the family.
    ///
    /// # Panics
    ///
    /// Panics if `index >= F`.
    pub fn member(&self, index: u64) -> RepHash {
        assert!(
            index < self.params.family_size,
            "index {index} out of family range"
        );
        RepHash {
            seed: self.seed,
            lambda: self.params.lambda,
            sigma: self.params.sigma,
            index,
        }
    }

    /// Draw a uniform member index (the `⌈log₂F⌉`-bit value the parties
    /// exchange).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.params.family_size)
    }

    /// Bits needed to communicate a member index.
    pub fn index_bits(&self) -> u32 {
        self.params.index_bits()
    }
}

/// One member of a [`RepHashFamily`]: a function `U → [0, λ)` with an
/// associated observation window `[0, σ)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepHash {
    seed: u64,
    lambda: u64,
    sigma: u64,
    index: u64,
}

impl RepHash {
    /// Hash `x` into `[0, λ)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        bounded(mix4(self.seed, self.lambda, self.index, x), self.lambda)
    }

    /// Output range λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Observation window σ.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The member index within its family.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Whether `x` hashes into the observation window (`h(x) < σ`).
    #[inline]
    pub fn in_window(&self, x: u64) -> bool {
        self.hash(x) < self.sigma
    }

    /// `A|_h^{≤σ}`: the elements of `a` hashing into the window.
    pub fn low(&self, a: &[u64]) -> Vec<u64> {
        a.iter().copied().filter(|&x| self.in_window(x)).collect()
    }

    /// `h(A|_h^{≤σ})`: the *hash values* below σ attained by `a`, sorted
    /// and deduplicated. This is what a node actually transmits (as a
    /// σ-bit bitmap).
    pub fn low_image(&self, a: &[u64]) -> Vec<u64> {
        let mut img: Vec<u64> = a
            .iter()
            .map(|&x| self.hash(x))
            .filter(|&h| h < self.sigma)
            .collect();
        img.sort_unstable();
        img.dedup();
        img
    }

    /// `A ∧_h^{≤σ} B`: elements `x ∈ A` with `h(x) < σ` such that some
    /// element of `B \ {x}` has the same hash.
    ///
    /// `b` must be sorted (as produced by the graph/palette substrate);
    /// this is asserted in debug builds.
    pub fn colliding(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "b must be sorted");
        let counts = self.window_counts(b);
        a.iter()
            .copied()
            .filter(|&x| {
                let h = self.hash(x);
                if h >= self.sigma {
                    return false;
                }
                match counts.get(&h) {
                    None => false,
                    Some(&c) => {
                        if b.binary_search(&x).is_ok() {
                            c >= 2
                        } else {
                            c >= 1
                        }
                    }
                }
            })
            .collect()
    }

    /// `A ¬_h^{≤σ} B`: elements of `A|_h^{≤σ}` not in collision with any
    /// other element of `B` — i.e. `low(a)` minus `colliding(a, b)`.
    ///
    /// `b` must be sorted.
    ///
    /// When `a` and `b` are the *same slice* (the `S ¬_h S` self-join,
    /// the hot case in `MultiTrial` and the similarity estimates), a
    /// one-pass fast path applies: `x` survives iff `h(x) < σ` and no
    /// other element shares its window value, tracked with a once/twice
    /// bit pair — each element hashed exactly once, no hash-map scratch,
    /// no per-element binary search. Results are identical to the
    /// general path (pinned by a test).
    pub fn isolated(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        if std::ptr::eq(a, b) {
            let words = self.sigma.div_ceil(64) as usize;
            let mut once = vec![0u64; words];
            let mut twice = vec![0u64; words];
            let mut hashes = Vec::with_capacity(a.len());
            for &x in a {
                let h = self.hash(x);
                hashes.push(h);
                if h < self.sigma {
                    let (w, bit) = ((h / 64) as usize, 1u64 << (h % 64));
                    twice[w] |= once[w] & bit;
                    once[w] |= bit;
                }
            }
            return a
                .iter()
                .zip(&hashes)
                .filter(|&(_, &h)| {
                    h < self.sigma && twice[(h / 64) as usize] & (1 << (h % 64)) == 0
                })
                .map(|(&x, _)| x)
                .collect();
        }
        debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "b must be sorted");
        let counts = self.window_counts(b);
        a.iter()
            .copied()
            .filter(|&x| {
                let h = self.hash(x);
                if h >= self.sigma {
                    return false;
                }
                match counts.get(&h) {
                    None => true,
                    Some(&c) => {
                        if b.binary_search(&x).is_ok() {
                            c == 1
                        } else {
                            false
                        }
                    }
                }
            })
            .collect()
    }

    /// Pack the window image of `xs` into a `σ`-bit bitmap (`σ/64` words):
    /// bit `i` is set iff some element hashes to `i`. This is the message
    /// format of `MultiTrial` (Alg. 4, line 4).
    pub fn window_bitmap(&self, xs: &[u64]) -> Vec<u64> {
        let words = self.sigma.div_ceil(64) as usize;
        let mut bits = vec![0u64; words];
        for &x in xs {
            let h = self.hash(x);
            if h < self.sigma {
                bits[(h / 64) as usize] |= 1 << (h % 64);
            }
        }
        bits
    }

    /// Multiplicity of each window hash value over `b`.
    fn window_counts(&self, b: &[u64]) -> HashMap<u64, u32> {
        let mut counts = HashMap::new();
        for &x in b {
            let h = self.hash(x);
            if h < self.sigma {
                *counts.entry(h).or_insert(0u32) += 1;
            }
        }
        counts
    }
}

/// Read bit `i` of a bitmap produced by [`RepHash::window_bitmap`].
#[inline]
pub fn bitmap_get(bits: &[u64], i: u64) -> bool {
    let word = (i / 64) as usize;
    word < bits.len() && bits[word] & (1 << (i % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn family() -> RepHashFamily {
        let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
        RepHashFamily::new(0xfeed, params)
    }

    #[test]
    fn members_are_deterministic_and_distinct() {
        let f = family();
        let h1 = f.member(3);
        let h2 = f.member(4);
        assert_eq!(h1.hash(99), f.member(3).hash(99));
        let same = (0..200).filter(|&x| h1.hash(x) == h2.hash(x)).count();
        assert!(same < 20, "members look identical: {same} agreements");
    }

    /// The same-slice fast path must agree with the general path
    /// (including on duplicate elements).
    #[test]
    fn isolated_self_join_fast_path_matches_general() {
        let f = family();
        for index in [0u64, 2, 5] {
            let h = f.member(index);
            let a: Vec<u64> = (0..400u64).map(|i| i * 3).collect();
            let b = a.clone();
            assert_eq!(h.isolated(&a, &a), h.isolated(&a, &b), "index {index}");
            let mut d: Vec<u64> = (0..100u64).map(|i| i * 5).collect();
            d.push(250);
            d.sort_unstable();
            let db = d.clone();
            assert_eq!(h.isolated(&d, &d), h.isolated(&d, &db), "index {index}");
            assert_eq!(h.isolated(&[], &[]).len(), 0);
        }
    }

    #[test]
    fn hash_respects_lambda() {
        let f = family();
        let h = f.member(0);
        for x in 0..5000u64 {
            assert!(h.hash(x) < h.lambda());
        }
    }

    #[test]
    fn low_matches_in_window() {
        let f = family();
        let h = f.member(1);
        let a: Vec<u64> = (0..300).collect();
        let low = h.low(&a);
        assert!(low.iter().all(|&x| h.in_window(x)));
        let low_set: HashSet<u64> = low.iter().copied().collect();
        for &x in &a {
            assert_eq!(h.in_window(x), low_set.contains(&x));
        }
    }

    #[test]
    fn low_size_concentrates() {
        // E[|A|_h|] = σ|A|/λ; check it is within a factor 2 for a few members.
        let f = family();
        let a: Vec<u64> = (0..300).collect();
        let expected = f.params().sigma as f64 * a.len() as f64 / f.params().lambda as f64;
        for i in 0..20 {
            let low = f.member(i).low(&a);
            let got = low.len() as f64;
            assert!(
                got > expected / 2.0 && got < expected * 2.0,
                "member {i}: |low| = {got}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn partition_low_into_colliding_and_isolated() {
        // A|_h = (A ∧ A) ⊔ (A ¬ A) when B = A.
        let f = family();
        let a: Vec<u64> = (0..250).collect();
        for i in [0u64, 5, 11] {
            let h = f.member(i);
            let low: HashSet<u64> = h.low(&a).into_iter().collect();
            let coll: HashSet<u64> = h.colliding(&a, &a).into_iter().collect();
            let iso: HashSet<u64> = h.isolated(&a, &a).into_iter().collect();
            assert!(coll.is_disjoint(&iso));
            let union: HashSet<u64> = coll.union(&iso).copied().collect();
            assert_eq!(union, low);
        }
    }

    #[test]
    fn proposition1_eq1_collision_image_halves() {
        // |h(A ∧ A)| ≤ |A ∧ A| / 2.
        let f = family();
        let a: Vec<u64> = (0..400).collect();
        for i in 0..10 {
            let h = f.member(i);
            let coll = h.colliding(&a, &a);
            let img: HashSet<u64> = coll.iter().map(|&x| h.hash(x)).collect();
            assert!(2 * img.len() <= coll.len(), "member {i}");
        }
    }

    #[test]
    fn proposition1_eq2_isolated_image_is_injective() {
        // A ⊆ B ⇒ |h(A ¬ B)| = |A ¬ B|.
        let f = family();
        let b: Vec<u64> = (0..400).collect();
        let a: Vec<u64> = (0..150).collect();
        for i in 0..10 {
            let h = f.member(i);
            let iso = h.isolated(&a, &b);
            let img: HashSet<u64> = iso.iter().map(|&x| h.hash(x)).collect();
            assert_eq!(img.len(), iso.len(), "member {i}");
        }
    }

    #[test]
    fn proposition1_eq3_monotonicity() {
        // B ⊆ C ⇒ (A ∧ B) ⊆ (A ∧ C) and (A ¬ C) ⊆ (A ¬ B).
        let f = family();
        let a: Vec<u64> = (0..200).collect();
        let b: Vec<u64> = (0..100).collect();
        let c: Vec<u64> = (0..300).collect();
        for i in 0..10 {
            let h = f.member(i);
            let and_b: HashSet<u64> = h.colliding(&a, &b).into_iter().collect();
            let and_c: HashSet<u64> = h.colliding(&a, &c).into_iter().collect();
            assert!(and_b.is_subset(&and_c), "member {i}: ∧ not monotone");
            let not_b: HashSet<u64> = h.isolated(&a, &b).into_iter().collect();
            let not_c: HashSet<u64> = h.isolated(&a, &c).into_iter().collect();
            assert!(not_c.is_subset(&not_b), "member {i}: ¬ not antitone");
        }
    }

    #[test]
    fn bitmap_roundtrip() {
        let f = family();
        let h = f.member(2);
        let xs: Vec<u64> = (0..500).collect();
        let bits = h.window_bitmap(&xs);
        for &x in &xs {
            let hv = h.hash(x);
            if hv < h.sigma() {
                assert!(bitmap_get(&bits, hv));
            }
        }
        // Bits not covered by any hash must be clear.
        let hit: HashSet<u64> = xs
            .iter()
            .map(|&x| h.hash(x))
            .filter(|&v| v < h.sigma())
            .collect();
        for i in 0..h.sigma() {
            assert_eq!(bitmap_get(&bits, i), hit.contains(&i), "bit {i}");
        }
    }

    #[test]
    fn colliding_detects_cross_set_collisions() {
        // Construct b so that some a-element certainly collides: use the
        // same element value (hash equality guaranteed), which must NOT
        // count (collision must be with a *different* element)…
        let f = family();
        let h = f.member(9);
        let a = vec![42u64];
        // b = {42}: the only shared hash comes from 42 itself → no collision.
        let b_same = vec![42u64];
        assert!(h.colliding(&a, &b_same).is_empty());
        // Find some y ≠ 42 with h(y) == h(42): then {y} collides with 42.
        if h.in_window(42) {
            let target = h.hash(42);
            if let Some(y) = (0..200_000u64).find(|&y| y != 42 && h.hash(y) == target) {
                let b = vec![y];
                assert_eq!(h.colliding(&a, &b), vec![42]);
                assert!(h.isolated(&a, &b).is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of family range")]
    fn member_index_bounds_checked() {
        let f = family();
        let _ = f.member(f.params().family_size);
    }

    #[test]
    fn empirical_goodness_fraction() {
        // Miniature E10: for a random pair (A, B) with |A| ≥ αλ, check that
        // most members satisfy the two Lemma 1 inequalities.
        let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 128, 10);
        let f = RepHashFamily::new(7, params);
        let a: Vec<u64> = (0..150).collect(); // |A| = 150 ≥ αλ = 50
        let b: Vec<u64> = (100..250).collect();
        let sigma = params.sigma as f64;
        let lambda = params.lambda as f64;
        let beta = params.beta;
        let mu = sigma * a.len() as f64 / lambda;
        let mut good = 0;
        let total = 256u64;
        for i in 0..total {
            let h = f.member(i);
            let low = h.low(&a).len() as f64;
            let coll = h.colliding(&a, &b).len() as f64;
            if (low - mu).abs() <= beta * mu && coll <= 2.0 * mu * beta {
                good += 1;
            }
        }
        assert!(
            good as f64 >= 0.75 * total as f64,
            "only {good}/{total} members were (A,B)-good"
        );
    }
}
