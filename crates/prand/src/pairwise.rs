//! Pairwise-independent hash families (explicit construction, §5.1).
//!
//! The classic construction over the Mersenne prime `p = 2⁶¹ − 1`:
//! `h_{a,b}(x) = ((a·x + b) mod p) mod λ` with `a ∈ [1, p)`, `b ∈ [0, p)`.
//! For distinct `x₁, x₂ < p` the pair `(h(x₁), h(x₂))` is uniform over
//! `[p]²` before the final reduction, giving collision probability at most
//! `(1 + ε)/λ` with `ε ≤ λ/p` — an *ε-almost pairwise-independent* family
//! in the sense used by the paper's uniform implementations (Alg. 5–6).
//!
//! The family is seeded: member `i` derives `(a, b)` from `(seed, i)`, so
//! communicating a member costs an index of `family_bits` bits, matching
//! the `O(log λ + log log |C| + log(1/ε))`-bit descriptions the paper cites
//! (Problem 3.4 in \[Vad12\]).

use crate::mix::{mix3, mix64};
use rand::Rng;

/// The Mersenne prime `2^61 − 1` used as the field modulus.
pub const P61: u64 = (1 << 61) - 1;

/// A seeded ε-almost pairwise-independent hash family `U → [0, λ)` with
/// `U = [0, 2^61 − 1)`.
///
/// # Example
///
/// ```
/// use prand::PairwiseFamily;
///
/// let family = PairwiseFamily::new(1, 256, 16);
/// let h = family.member(3);
/// assert!(h.hash(12345) < 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseFamily {
    seed: u64,
    lambda: u64,
    family_bits: u32,
}

impl PairwiseFamily {
    /// Family hashing into `[0, lambda)` with `2^family_bits` members.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is zero or `≥ p`, or `family_bits > 62`.
    pub fn new(seed: u64, lambda: u64, family_bits: u32) -> Self {
        assert!(lambda > 0, "lambda must be positive");
        assert!(lambda < P61, "lambda must be below the field modulus");
        assert!(family_bits <= 62, "family_bits too large");
        PairwiseFamily {
            seed,
            lambda,
            family_bits,
        }
    }

    /// Output range λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Number of members `2^family_bits`.
    pub fn family_size(&self) -> u64 {
        1u64 << self.family_bits
    }

    /// Bits to communicate a member index.
    pub fn index_bits(&self) -> u32 {
        self.family_bits
    }

    /// Member `index`: coefficients `(a, b)` derived from `(seed, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn member(&self, index: u64) -> PairwiseHash {
        assert!(
            index < self.family_size(),
            "index {index} out of family range"
        );
        let a = mix3(self.seed, index, 0x1234_5678) % (P61 - 1) + 1;
        let b = mix3(self.seed, index, 0x8765_4321) % P61;
        PairwiseHash {
            a,
            b,
            lambda: self.lambda,
        }
    }

    /// Draw a uniform member index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.family_size())
    }

    /// Upper bound on the almost-pairwise-independence slack ε ≈ λ/p.
    pub fn epsilon(&self) -> f64 {
        self.lambda as f64 / P61 as f64
    }
}

/// One member `h_{a,b}` of a [`PairwiseFamily`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    lambda: u64,
}

impl PairwiseHash {
    /// Hash `x` into `[0, λ)`. Inputs are first folded into the field
    /// `[0, 2^61−1)` by a full-avalanche mix (a fixed public injection
    /// would require `x < p`; the mix spreads larger inputs uniformly,
    /// adding a `2^-61`-order term to ε).
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = mix64(x) % P61;
        mulmod_p61(self.a, x).wrapping_add(self.b) % P61 % self.lambda
    }

    /// Output range λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Number of elements of `domain` whose hash collides with another
    /// element of `domain` (used by the uniform algorithms, which pick a
    /// member with few collisions on their own palette).
    pub fn collision_count(&self, domain: &[u64]) -> usize {
        let mut hashes: Vec<u64> = domain.iter().map(|&x| self.hash(x)).collect();
        hashes.sort_unstable();
        let mut colliding = 0usize;
        let mut i = 0;
        while i < hashes.len() {
            let mut j = i + 1;
            while j < hashes.len() && hashes[j] == hashes[i] {
                j += 1;
            }
            if j - i >= 2 {
                colliding += j - i;
            }
            i = j;
        }
        colliding
    }
}

/// `a·b mod (2^61 − 1)` via 128-bit arithmetic and Mersenne reduction.
#[inline]
fn mulmod_p61(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & ((1u128 << 61) - 1)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo.wrapping_add(hi % P61);
    if s >= P61 {
        s -= P61;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_matches_naive() {
        for (a, b) in [(3u64, 5u64), (P61 - 1, P61 - 1), (1 << 60, 12345)] {
            let expected = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!(mulmod_p61(a, b), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn hashes_in_range() {
        let f = PairwiseFamily::new(9, 100, 8);
        let h = f.member(5);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < 100);
        }
    }

    #[test]
    fn members_differ() {
        let f = PairwiseFamily::new(9, 1 << 20, 8);
        let (h1, h2) = (f.member(0), f.member(1));
        let agreements = (0..100u64).filter(|&x| h1.hash(x) == h2.hash(x)).count();
        assert!(agreements < 5);
    }

    #[test]
    fn pairwise_collision_probability() {
        // Over random members, Pr[h(x1) = h(x2)] ≈ 1/λ for fixed x1 ≠ x2.
        let lambda = 64u64;
        let f = PairwiseFamily::new(33, lambda, 14);
        let trials = f.family_size();
        let (x1, x2) = (123u64, 987_654u64);
        let collisions = (0..trials)
            .filter(|&i| f.member(i).hash(x1) == f.member(i).hash(x2))
            .count();
        let rate = collisions as f64 / trials as f64;
        let ideal = 1.0 / lambda as f64;
        assert!(
            rate < 2.0 * ideal + 0.002,
            "collision rate {rate}, ideal {ideal}"
        );
    }

    #[test]
    fn marginal_is_roughly_uniform() {
        // For fixed x, h(x) over the family should cover [λ] evenly.
        let lambda = 16u64;
        let f = PairwiseFamily::new(5, lambda, 12);
        let mut counts = vec![0usize; lambda as usize];
        for i in 0..f.family_size() {
            counts[f.member(i).hash(42) as usize] += 1;
        }
        let expected = f.family_size() as f64 / lambda as f64;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.3 * expected,
                "value {v}: count {c} vs {expected}"
            );
        }
    }

    #[test]
    fn collision_count_counts_all_colliding_elements() {
        let f = PairwiseFamily::new(1, 2, 4); // λ=2 forces many collisions
        let h = f.member(0);
        let domain: Vec<u64> = (0..10).collect();
        let c = h.collision_count(&domain);
        // With λ = 2 and 10 elements, at least 8 elements must collide.
        assert!(c >= 8, "collision count {c}");
    }

    #[test]
    fn collision_count_zero_on_singleton() {
        let f = PairwiseFamily::new(1, 1000, 4);
        assert_eq!(f.member(0).collision_count(&[7]), 0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_zero_lambda() {
        let _ = PairwiseFamily::new(0, 0, 4);
    }
}
