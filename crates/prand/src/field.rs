//! Arithmetic in the finite field GF(2⁸), the substrate for the
//! Reed–Solomon code of [`crate::ecc`].
//!
//! Elements are bytes; addition is XOR; multiplication is carried out via
//! log/exp tables over the generator 0x03 of the multiplicative group,
//! with the AES reduction polynomial `x⁸ + x⁴ + x³ + x + 1` (0x11b).

/// Log/exp tables for GF(2⁸), built once.
#[derive(Debug)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

static TABLES: std::sync::OnceLock<Gf256> = std::sync::OnceLock::new();

impl Gf256 {
    /// The shared table instance.
    pub fn get() -> &'static Gf256 {
        TABLES.get_or_init(Gf256::build)
    }

    fn build() -> Gf256 {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply x by the generator 0x03 = x + 1.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        // Duplicate the exp table so mul can skip a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// `a^k` by repeated squaring through the log table.
    #[inline]
    pub fn pow(&self, a: u8, k: u32) -> u8 {
        if a == 0 {
            return if k == 0 { 1 } else { 0 };
        }
        let l = (self.log[a as usize] as u32 * k) % 255;
        self.exp[l as usize]
    }

    /// Evaluate the polynomial with coefficients `coeffs` (low degree
    /// first) at point `x`, by Horner's rule.
    pub fn eval_poly(&self, coeffs: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook multiplication for cross-checking.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1b;
            }
            b >>= 1;
        }
        p
    }

    #[test]
    fn table_mul_matches_schoolbook() {
        let f = Gf256::get();
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 7, 0x53, 0xca, 0xff] {
                assert_eq!(f.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_is_commutative_with_identity() {
        let f = Gf256::get();
        for a in 0..=255u8 {
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(1, a), a);
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.mul(a, 0x1d), f.mul(0x1d, a));
        }
    }

    #[test]
    fn inverse_is_correct() {
        let f = Gf256::get();
        for a in 1..=255u8 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf256::get();
        let a = 0x57u8;
        let mut acc = 1u8;
        for k in 0..20 {
            assert_eq!(f.pow(a, k), acc, "k={k}");
            acc = f.mul(acc, a);
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn distributivity_samples() {
        let f = Gf256::get();
        for (a, b, c) in [(0x12u8, 0x34u8, 0x56u8), (0xff, 0xfe, 0x01), (7, 11, 13)] {
            assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        }
    }

    #[test]
    fn poly_eval_horner() {
        let f = Gf256::get();
        // p(x) = 3 + 2x + x².
        let coeffs = [3u8, 2, 1];
        for x in [0u8, 1, 5, 0x80] {
            let expected = f.add(f.add(3, f.mul(2, x)), f.mul(x, x));
            assert_eq!(f.eval_poly(&coeffs, x), expected, "x={x}");
        }
    }
}
