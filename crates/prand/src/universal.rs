//! Approximately-universal hash families for large color spaces
//! (Appendix D.3).
//!
//! A `(1+ε)`-approximately universal family satisfies
//! `Pr[h(x₁) = h(x₂)] ≤ (1+ε)/M` for all distinct `x₁, x₂`. The paper uses
//! such a family with `M = Θ(n^d)` so that nodes can announce adopted
//! colors from a color space of size up to `exp(n^Θ(1))` by sending `O(d
//! log n)`-bit hash values, with no collision in any neighborhood w.h.p.
//!
//! Construction: the multiply-shift / field construction reused from
//! [`crate::pairwise`] (a pairwise-independent family is in particular
//! universal). Members are seeded, so a node broadcasts a
//! `family_bits`-bit index once, then `⌈log₂ M⌉` bits per color.

use crate::pairwise::{PairwiseFamily, PairwiseHash};
use rand::Rng;

/// A seeded approximately-universal family `colors → [0, M)`.
///
/// # Example
///
/// ```
/// use prand::ColorHashFamily;
///
/// // Hash 2^40-bit colors into a 2^30 space for a 1000-node graph.
/// let family = ColorHashFamily::for_graph(1000, 3, 7);
/// let h = family.member(12);
/// let img = h.hash(0xdead_beef);
/// assert!(img < family.m());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorHashFamily {
    inner: PairwiseFamily,
    m: u64,
}

impl ColorHashFamily {
    /// Family hashing into `[0, m)` with `2^family_bits` members.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `family_bits > 62`.
    pub fn new(seed: u64, m: u64, family_bits: u32) -> Self {
        ColorHashFamily {
            inner: PairwiseFamily::new(seed ^ 0x000c_0109, m, family_bits),
            m,
        }
    }

    /// The App. D.3 instantiation: `M = (n+1)^d` (capped at `2^60`, below
    /// the hash field's modulus), which makes any-neighborhood collisions
    /// `n^{-(d-5)}`-unlikely.
    pub fn for_graph(n: usize, d: u32, seed: u64) -> Self {
        let m = (n as u64 + 1).saturating_pow(d).min(1 << 60);
        Self::new(seed, m, 16)
    }

    /// Output space size `M`.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Bits per transmitted hash value: `⌈log₂ M⌉`.
    pub fn value_bits(&self) -> u32 {
        64 - self.m.saturating_sub(1).leading_zeros()
    }

    /// Bits to transmit a member index.
    pub fn index_bits(&self) -> u32 {
        self.inner.index_bits()
    }

    /// Member `index` of the family.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn member(&self, index: u64) -> ColorHash {
        ColorHash {
            inner: self.inner.member(index),
        }
    }

    /// Draw a uniform member index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.inner.sample_index(rng)
    }
}

/// One member of a [`ColorHashFamily`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorHash {
    inner: PairwiseHash,
}

impl ColorHash {
    /// Hash a color into `[0, M)`.
    #[inline]
    pub fn hash(&self, color: u64) -> u64 {
        self.inner.hash(color)
    }

    /// Whether `hash` is the image of any color in the sorted `palette`,
    /// and if so of which (first match). This is how a receiving node
    /// interprets a hashed color announcement.
    pub fn preimage_in(&self, palette: &[u64], hash: u64) -> Option<u64> {
        palette.iter().copied().find(|&c| self.hash(c) == hash)
    }

    /// Whether the member is injective on `palette` (no collisions) — the
    /// property the post-shattering color-space reduction verifies before
    /// adopting a member (Lemma 17).
    pub fn injective_on(&self, palette: &[u64]) -> bool {
        let mut hs: Vec<u64> = palette.iter().map(|&c| self.hash(c)).collect();
        hs.sort_unstable();
        hs.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits_matches_m() {
        let f = ColorHashFamily::new(1, 1 << 30, 10);
        assert_eq!(f.value_bits(), 30);
        let g = ColorHashFamily::new(1, (1 << 30) + 1, 10);
        assert_eq!(g.value_bits(), 31);
    }

    #[test]
    fn for_graph_scales_with_n_and_d() {
        let f = ColorHashFamily::for_graph(1000, 3, 7);
        assert_eq!(f.m(), 1001u64.pow(3));
    }

    #[test]
    fn no_neighborhood_collisions_whp() {
        // 100 random colors, M = n^3 with n=1000: collisions should be
        // absent for most members.
        let f = ColorHashFamily::for_graph(1000, 3, 3);
        let colors: Vec<u64> = (0..100).map(|i| i * 0x9e37_79b9 + 5).collect();
        let injective = (0..200u64)
            .filter(|&i| f.member(i).injective_on(&colors))
            .count();
        assert!(injective >= 195, "only {injective}/200 members injective");
    }

    #[test]
    fn preimage_lookup() {
        let f = ColorHashFamily::for_graph(100, 3, 9);
        let h = f.member(4);
        let palette = [10u64, 20, 30];
        let target = h.hash(20);
        assert_eq!(h.preimage_in(&palette, target), Some(20));
        // A value that no palette color maps to (search for one).
        let misses = (0..f.m()).find(|&v| palette.iter().all(|&c| h.hash(c) != v));
        if let Some(v) = misses {
            assert_eq!(h.preimage_in(&palette, v), None);
        }
    }

    #[test]
    fn injectivity_detects_collisions() {
        // λ = 2 forces collisions among any 3 colors.
        let f = ColorHashFamily::new(5, 2, 6);
        assert!(!f.member(0).injective_on(&[1, 2, 3]));
    }
}
