//! `JointSample(ε)` — Algorithm 2, Lemma 3.
//!
//! Two parties sample an element of `S_u ∩ S_v` jointly: after the same
//! setup as `EstimateSimilarity`, they pick a random hash value in
//! `h(T_u) ∩ h(T_v)` and each output their unique preimage. When
//! `|S_u ∩ S_v| ≥ ε·max(|S_u|,|S_v|)` the two outputs coincide with
//! probability `1 − 5ε/4 − ν`.

use crate::scheme::SimilarityScheme;
use crate::similarity::{window_signature, EdgeSetup};
use congest::message::bits_for_range;
use congest::BitTally;
use prand::bitmap_get;
use rand::Rng;

/// Outcome of one `JointSample` execution.
#[derive(Clone, Debug, PartialEq)]
pub struct JointSampleOutcome {
    /// Element output by the `S_u` side (descaled), if any.
    pub u_out: Option<u64>,
    /// Element output by the `S_v` side (descaled), if any.
    pub v_out: Option<u64>,
    /// Communication transcript.
    pub tally: BitTally,
}

impl JointSampleOutcome {
    /// Whether both parties output the same element (the Lemma 3 event).
    pub fn agreed(&self) -> bool {
        self.u_out.is_some() && self.u_out == self.v_out
    }
}

/// Run `JointSample` on sorted sets `su`, `sv`.
///
/// # Example
///
/// ```
/// use estimate::{joint_sample, SimilarityScheme};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let s: Vec<u64> = (0..400).collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let out = joint_sample(&SimilarityScheme::practical(0.25), &s, &s, 11, &mut rng);
/// if out.agreed() {
///     assert!(s.contains(&out.u_out.unwrap()));
/// }
/// ```
pub fn joint_sample<R: Rng + ?Sized>(
    scheme: &SimilarityScheme,
    su: &[u64],
    sv: &[u64],
    seed: u64,
    rng: &mut R,
) -> JointSampleOutcome {
    let mut tally = BitTally::new();
    if su.is_empty() || sv.is_empty() {
        return JointSampleOutcome {
            u_out: None,
            v_out: None,
            tally,
        };
    }
    let setup = EdgeSetup::new(scheme, su.len(), sv.len(), seed);
    let h = setup.pick_hash(rng, &mut tally);
    let bu = window_signature(&setup, &h, su);
    let bv = window_signature(&setup, &h, sv);
    tally.exchange(setup.sigma());
    // Step 6: J = |h(T_u) ∩ h(T_v)|; return nothing if empty.
    let common: Vec<u64> = (0..setup.sigma())
        .filter(|&i| bitmap_get(&bu, i) && bitmap_get(&bv, i))
        .collect();
    if common.is_empty() {
        return JointSampleOutcome {
            u_out: None,
            v_out: None,
            tally,
        };
    }
    // Step 7: jointly pick j_e ∈ [J] — lower-id side draws and sends it.
    let je = rng.gen_range(0..common.len());
    tally.a_to_b(bits_for_range(common.len() as u64));
    let target = common[je];
    // Step 8: each side outputs its unique T-element hashing to `target`.
    let u_out = preimage(&setup, &h, su, target);
    let v_out = preimage(&setup, &h, sv, target);
    JointSampleOutcome {
        u_out,
        v_out,
        tally,
    }
}

/// The unique element of `T = S' ¬_h S'` with `h(x) = target`, descaled
/// back to the original universe.
fn preimage(setup: &EdgeSetup, h: &prand::RepHash, s: &[u64], target: u64) -> Option<u64> {
    if setup.k == 1 {
        let t = h.isolated(s, s);
        return t.into_iter().find(|&x| h.hash(x) == target);
    }
    let scaled: Vec<u64> = s
        .iter()
        .flat_map(|&x| (0..setup.k).map(move |i| x * setup.k + i))
        .collect();
    let mut sorted = scaled.clone();
    sorted.sort_unstable();
    let t = h.isolated(&scaled, &sorted);
    t.into_iter()
        .find(|&x| h.hash(x) == target)
        .map(|x| x / setup.k)
}

/// Outcome of a multi-element `JointSample` execution.
#[derive(Clone, Debug, PartialEq)]
pub struct JointSampleManyOutcome {
    /// Elements output by the `S_u` side, in draw order.
    pub u_out: Vec<u64>,
    /// Elements output by the `S_v` side, in draw order.
    pub v_out: Vec<u64>,
    /// Communication transcript.
    pub tally: BitTally,
}

impl JointSampleManyOutcome {
    /// Positions where both parties output the same element.
    pub fn agreements(&self) -> usize {
        self.u_out
            .iter()
            .zip(&self.v_out)
            .filter(|(a, b)| a == b)
            .count()
    }
}

/// The multi-element variant the paper notes after Lemma 3: "the nodes can
/// even sample multiple elements … by picking multiple indices instead of
/// a single one in step 7. This takes the same number of CONGEST rounds."
/// (Samples may repeat, and when the scale-up factor `k > 1` two draws can
/// be copies of the same base element.)
pub fn joint_sample_many<R: Rng + ?Sized>(
    scheme: &SimilarityScheme,
    su: &[u64],
    sv: &[u64],
    count: usize,
    seed: u64,
    rng: &mut R,
) -> JointSampleManyOutcome {
    let mut tally = BitTally::new();
    if su.is_empty() || sv.is_empty() || count == 0 {
        return JointSampleManyOutcome {
            u_out: Vec::new(),
            v_out: Vec::new(),
            tally,
        };
    }
    let setup = EdgeSetup::new(scheme, su.len(), sv.len(), seed);
    let h = setup.pick_hash(rng, &mut tally);
    let bu = window_signature(&setup, &h, su);
    let bv = window_signature(&setup, &h, sv);
    tally.exchange(setup.sigma());
    let common: Vec<u64> = (0..setup.sigma())
        .filter(|&i| bitmap_get(&bu, i) && bitmap_get(&bv, i))
        .collect();
    if common.is_empty() {
        return JointSampleManyOutcome {
            u_out: Vec::new(),
            v_out: Vec::new(),
            tally,
        };
    }
    let mut u_out = Vec::with_capacity(count);
    let mut v_out = Vec::with_capacity(count);
    for _ in 0..count {
        let je = rng.gen_range(0..common.len());
        tally.a_to_b(bits_for_range(common.len() as u64));
        let target = common[je];
        if let (Some(a), Some(b)) = (
            preimage(&setup, &h, su, target),
            preimage(&setup, &h, sv, target),
        ) {
            u_out.push(a);
            v_out.push(b);
        }
    }
    JointSampleManyOutcome {
        u_out,
        v_out,
        tally,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_input_returns_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = joint_sample(&SimilarityScheme::practical(0.25), &[], &[1], 0, &mut rng);
        assert!(!out.agreed());
        assert_eq!(out.u_out, None);
    }

    #[test]
    fn identical_sets_agree_often_and_sample_members() {
        let s: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        let scheme = SimilarityScheme::practical(0.25);
        let mut agreements = 0;
        let trials = 60;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t);
            let out = joint_sample(&scheme, &s, &s, 5, &mut rng);
            if out.agreed() {
                agreements += 1;
                assert!(s.binary_search(&out.u_out.unwrap()).is_ok());
            }
        }
        // Lemma 3: agreement w.p. ≥ 1 − 5ε/4 − ν ≈ 0.69 for ε = .25.
        assert!(
            agreements * 10 >= trials * 6,
            "{agreements}/{trials} agreements"
        );
    }

    #[test]
    fn sampled_elements_favor_intersection() {
        let su: Vec<u64> = (0..600).collect();
        let sv: Vec<u64> = (200..800).collect();
        let scheme = SimilarityScheme::practical(0.25);
        let mut in_intersection = 0;
        let mut agreements = 0;
        for t in 0..80 {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let out = joint_sample(&scheme, &su, &sv, 8, &mut rng);
            if out.agreed() {
                agreements += 1;
                let x = out.u_out.unwrap();
                if (200..600).contains(&x) {
                    in_intersection += 1;
                }
            }
        }
        assert!(agreements > 30, "too few agreements: {agreements}");
        // Agreement implies intersection membership by construction.
        assert_eq!(in_intersection, agreements);
    }

    #[test]
    fn disjoint_sets_rarely_agree() {
        let su: Vec<u64> = (0..400).collect();
        let sv: Vec<u64> = (10_000..10_400).collect();
        let scheme = SimilarityScheme::practical(0.25);
        let agreements = (0..40)
            .filter(|&t| {
                let mut rng = StdRng::seed_from_u64(t);
                joint_sample(&scheme, &su, &sv, 2, &mut rng).agreed()
            })
            .count();
        assert!(agreements <= 4, "{agreements}/40 spurious agreements");
    }

    #[test]
    fn many_samples_mostly_agree_and_come_from_the_intersection() {
        let su: Vec<u64> = (0..500).collect();
        let sv: Vec<u64> = (100..600).collect();
        let scheme = SimilarityScheme::practical(0.25);
        let mut rng = StdRng::seed_from_u64(77);
        let out = joint_sample_many(&scheme, &su, &sv, 16, 5, &mut rng);
        assert!(!out.u_out.is_empty(), "no samples drawn");
        let agree = out.agreements();
        assert!(
            agree * 10 >= out.u_out.len() * 6,
            "{agree}/{} agreements",
            out.u_out.len()
        );
        for (a, b) in out.u_out.iter().zip(&out.v_out) {
            if a == b {
                assert!(
                    (100..600).contains(a),
                    "agreed sample {a} outside intersection"
                );
            }
        }
    }

    #[test]
    fn many_with_zero_count_is_empty() {
        let s: Vec<u64> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = joint_sample_many(&SimilarityScheme::practical(0.5), &s, &s, 0, 2, &mut rng);
        assert!(out.u_out.is_empty());
        assert_eq!(out.agreements(), 0);
    }

    #[test]
    fn agreement_with_scale_up() {
        // Small identical sets exercise the k > 1 path.
        let s: Vec<u64> = (0..10).collect();
        let scheme = SimilarityScheme::practical(0.5);
        let agreements = (0..40)
            .filter(|&t| {
                let mut rng = StdRng::seed_from_u64(t);
                let out = joint_sample(&scheme, &s, &s, 21, &mut rng);
                out.agreed() && s.contains(&out.u_out.unwrap())
            })
            .count();
        assert!(agreements >= 15, "{agreements}/40 agreements with scale-up");
    }
}
