//! Local triangle finding — Theorem 2.
//!
//! "There exists an `O(ε⁻⁴)`-round randomized CONGEST algorithm that, for
//! each edge, detects w.h.p. when it is part of `εΔ` triangles." The number
//! of triangles through edge `{u,v}` is exactly `|N(u) ∩ N(v)|`, so the
//! detector is `EstimateSimilarity` on every edge plus a threshold test.

use crate::neighborhood::run_neighborhood_similarity;
use crate::scheme::SimilarityScheme;
use congest::{RunReport, SimConfig, SimError};
use graphs::{Graph, NodeId};

/// Result of the triangle detector.
#[derive(Clone, Debug, Default)]
pub struct TriangleReport {
    /// Per node, per sorted-neighbor-position estimate of the number of
    /// triangles through that edge.
    pub estimates: Vec<Vec<f64>>,
    /// Edges flagged as triangle-rich (each reported once, `u < v`).
    pub flagged: Vec<(NodeId, NodeId)>,
    /// The detection threshold `ε·Δ` that was applied.
    pub threshold: f64,
}

/// Detect, for every edge, whether it lies on at least `εΔ` triangles.
///
/// An edge is flagged when its estimate is at least `εΔ/2` (the midpoint
/// between the "rich" promise `εΔ` and the estimator's `±εΔ`-scale error;
/// Theorem 2 distinguishes `≥ εΔ` from `≈ 0`, not from `εΔ − 1`).
///
/// # Errors
///
/// Propagates engine errors.
pub fn find_triangle_rich_edges(
    g: &Graph,
    eps: f64,
    scheme: SimilarityScheme,
    config: SimConfig,
    seed: u64,
) -> Result<(TriangleReport, RunReport), SimError> {
    let (estimates, report) = run_neighborhood_similarity(g, scheme, config, seed)?;
    let threshold = eps * g.max_degree() as f64;
    let mut flagged = Vec::new();
    for v in 0..g.n() as NodeId {
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            if v < u && estimates[v as usize][i] >= threshold / 2.0 {
                flagged.push((v, u));
            }
        }
    }
    Ok((
        TriangleReport {
            estimates,
            flagged,
            threshold,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn planted_rich_edge_is_flagged() {
        // Edge (0,1) lies on 30 triangles; Δ ≈ 31, so with ε = 0.5 the
        // promise εΔ ≈ 15 is comfortably met.
        let g = gen::triangle_rich(120, 30, 0.03, 3);
        let (rep, run) = find_triangle_rich_edges(
            &g,
            0.5,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(1),
            5,
        )
        .unwrap();
        assert!(run.completed);
        assert!(rep.flagged.contains(&(0, 1)), "flagged: {:?}", rep.flagged);
    }

    #[test]
    fn triangle_free_graph_flags_nothing() {
        let g = gen::complete_bipartite(20, 20); // bipartite ⇒ triangle-free
        let (rep, _) = find_triangle_rich_edges(
            &g,
            0.5,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(2),
            7,
        )
        .unwrap();
        assert!(rep.flagged.is_empty(), "spurious flags: {:?}", rep.flagged);
    }

    #[test]
    fn clique_flags_every_edge() {
        let g = gen::complete(20);
        let (rep, _) = find_triangle_rich_edges(
            &g,
            0.5,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(3),
            9,
        )
        .unwrap();
        // Every K20 edge lies on 18 = Δ·18/19 triangles.
        assert_eq!(
            rep.flagged.len(),
            g.m(),
            "flagged {} of {}",
            rep.flagged.len(),
            g.m()
        );
    }

    #[test]
    fn threshold_scales_with_delta() {
        let g = gen::complete(10);
        let (rep, _) = find_triangle_rich_edges(
            &g,
            0.4,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(4),
            11,
        )
        .unwrap();
        assert!((rep.threshold - 0.4 * 9.0).abs() < 1e-12);
    }
}
