//! Per-edge neighborhood-similarity estimation as a CONGEST program.
//!
//! Runs `EstimateSimilarity` (Alg. 1) on every edge simultaneously, with
//! `S_u = N(u)` and `S_v = N(v)` — the building block of
//! `EstimateSparsity` (Alg. 3), local triangle finding (Theorem 2), and
//! the almost-clique decomposition (§4.2).
//!
//! Round structure (4 rounds, O(1) as claimed):
//!
//! 0. every node broadcasts its degree (`⌈log₂ n⌉` bits);
//! 1. on each edge the lower-id endpoint draws the shared family index and
//!    sends it (`⌈log₂ F⌉` bits);
//! 2. both endpoints exchange their σ-bit window signatures;
//! 3. estimates are computed locally; the program finishes.

use crate::scheme::SimilarityScheme;
use crate::similarity::{intersection_size, window_signature, EdgeSetup};
use congest::message::bits_for_range;
use congest::{Ctx, Message, Program};
use graphs::NodeId;
use prand::mix::mix3;

/// Messages of the neighborhood-similarity protocol.
#[derive(Clone, Debug)]
pub enum NsMsg {
    /// Round-0 degree announcement; costs `⌈log₂ n⌉` bits.
    Degree {
        /// The sender's degree.
        degree: u32,
        /// Bit cost (`⌈log₂ n⌉`), fixed by the caller.
        bits: u32,
    },
    /// Round-1 joint hash choice; costs `⌈log₂ F⌉` bits.
    Index {
        /// Family member index for this edge.
        index: u64,
        /// Bit cost of the index.
        bits: u32,
    },
    /// Round-2 window signature; costs σ bits.
    Signature {
        /// Packed σ-bit bitmap of `h(T)`.
        bitmap: Vec<u64>,
        /// The window size σ.
        sigma: u64,
    },
}

impl Message for NsMsg {
    fn bit_cost(&self) -> u64 {
        match self {
            NsMsg::Degree { bits, .. } | NsMsg::Index { bits, .. } => u64::from(*bits),
            NsMsg::Signature { sigma, .. } => *sigma,
        }
    }
}

/// Per-node program estimating `|N(u) ∩ N(v)|` for every incident edge.
#[derive(Clone, Debug)]
pub struct NeighborhoodSimilarity {
    scheme: SimilarityScheme,
    seed: u64,
    degree_bits: u32,
    /// Per-neighbor (position-indexed) degree of the other endpoint.
    neighbor_degrees: Vec<u32>,
    /// Per-neighbor family index agreed for the edge.
    edge_index: Vec<u64>,
    /// Per-neighbor estimate of `|N(u) ∩ N(v)|` (valid once done).
    estimates: Vec<f64>,
    done: bool,
}

impl NeighborhoodSimilarity {
    /// A program for one node of an `n`-node graph. All nodes must share
    /// `scheme` and `seed`.
    pub fn new(scheme: SimilarityScheme, seed: u64, n: usize) -> Self {
        NeighborhoodSimilarity {
            scheme,
            seed,
            degree_bits: bits_for_range(n as u64) as u32,
            neighbor_degrees: Vec::new(),
            edge_index: Vec::new(),
            estimates: Vec::new(),
            done: false,
        }
    }

    /// Per-neighbor estimates, aligned with the node's sorted neighbor
    /// list. Empty until the program finishes.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// The deterministic per-edge family seed both endpoints derive.
    fn edge_seed(&self, a: NodeId, b: NodeId) -> u64 {
        mix3(self.seed, u64::from(a.min(b)), u64::from(a.max(b)))
    }

    fn edge_setup(&self, me: NodeId, nb: NodeId, my_deg: usize, nb_deg: usize) -> EdgeSetup {
        EdgeSetup::new(&self.scheme, my_deg, nb_deg, self.edge_seed(me, nb))
    }
}

impl Program for NeighborhoodSimilarity {
    type Msg = NsMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, NsMsg>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                self.neighbor_degrees = vec![0; ctx.degree()];
                self.edge_index = vec![0; ctx.degree()];
                ctx.broadcast(NsMsg::Degree {
                    degree: ctx.degree() as u32,
                    bits: self.degree_bits,
                });
            }
            1 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let NsMsg::Degree { degree, .. } = msg {
                        let i = ctx.neighbor_index(from).expect("degree from non-neighbor");
                        self.neighbor_degrees[i] = *degree;
                    }
                }
                // Lower-id endpoint draws the edge's family index.
                let me = ctx.id();
                let my_deg = ctx.degree();
                for i in 0..ctx.neighbors().len() {
                    let nb = ctx.neighbors()[i];
                    if me < nb {
                        let setup =
                            self.edge_setup(me, nb, my_deg, self.neighbor_degrees[i] as usize);
                        let index = setup.family.sample_index(ctx.rng());
                        self.edge_index[i] = index;
                        ctx.send(
                            nb,
                            NsMsg::Index {
                                index,
                                bits: setup.family.index_bits(),
                            },
                        );
                    }
                }
            }
            2 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let NsMsg::Index { index, .. } = msg {
                        let i = ctx.neighbor_index(from).expect("index from non-neighbor");
                        self.edge_index[i] = *index;
                    }
                }
                // Send per-edge signatures of the own neighborhood.
                let me = ctx.id();
                let my_deg = ctx.degree();
                let own: Vec<u64> = ctx.neighbors().iter().map(|&w| u64::from(w)).collect();
                for i in 0..ctx.neighbors().len() {
                    let nb = ctx.neighbors()[i];
                    let setup = self.edge_setup(me, nb, my_deg, self.neighbor_degrees[i] as usize);
                    let h = setup.family.member(self.edge_index[i]);
                    let bitmap = window_signature(&setup, &h, &own);
                    ctx.send(
                        nb,
                        NsMsg::Signature {
                            bitmap,
                            sigma: setup.sigma(),
                        },
                    );
                }
            }
            _ => {
                let me = ctx.id();
                let my_deg = ctx.degree();
                let own: Vec<u64> = ctx.neighbors().iter().map(|&w| u64::from(w)).collect();
                self.estimates = vec![0.0; ctx.degree()];
                for &(from, ref msg) in ctx.inbox() {
                    if let NsMsg::Signature { bitmap, .. } = msg {
                        let i = ctx
                            .neighbor_index(from)
                            .expect("signature from non-neighbor");
                        let setup =
                            self.edge_setup(me, from, my_deg, self.neighbor_degrees[i] as usize);
                        let h = setup.family.member(self.edge_index[i]);
                        let mine = window_signature(&setup, &h, &own);
                        let j = intersection_size(&mine, bitmap);
                        self.estimates[i] = setup.descale(j);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Run the protocol on a whole graph and return per-node, per-neighbor
/// estimates (aligned with sorted neighbor lists) plus the engine report.
///
/// # Errors
///
/// Propagates engine errors (bandwidth violations in strict mode).
pub fn run_neighborhood_similarity(
    g: &graphs::Graph,
    scheme: SimilarityScheme,
    config: congest::SimConfig,
    seed: u64,
) -> Result<(Vec<Vec<f64>>, congest::RunReport), congest::SimError> {
    let programs = (0..g.n())
        .map(|_| NeighborhoodSimilarity::new(scheme, seed, g.n()))
        .collect();
    let (programs, report) = congest::run(g, programs, config)?;
    Ok((programs.into_iter().map(|p| p.estimates).collect(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::SimConfig;
    use graphs::gen;

    #[test]
    fn clique_edges_have_full_overlap() {
        let g = gen::complete(24);
        let scheme = SimilarityScheme::practical(0.25);
        let (est, report) =
            run_neighborhood_similarity(&g, scheme, SimConfig::seeded(3), 17).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 4);
        // |N(u) ∩ N(v)| = 22 on every edge of K24.
        let mut close = 0;
        let mut total = 0;
        for row in est.iter().take(24) {
            for &e in row {
                total += 1;
                if (e - 22.0).abs() <= 0.25 * 23.0 {
                    close += 1;
                }
            }
        }
        assert!(close * 10 >= total * 8, "{close}/{total} within ε bound");
    }

    #[test]
    fn star_edges_have_zero_overlap() {
        let g = gen::star(20);
        let scheme = SimilarityScheme::practical(0.25);
        let (est, _) = run_neighborhood_similarity(&g, scheme, SimConfig::seeded(1), 7).unwrap();
        // Center–leaf edges share no neighbors.
        let mut ok = 0;
        let mut total = 0;
        for &e in &est[0] {
            total += 1;
            if e <= 0.25 * 20.0 {
                ok += 1;
            }
        }
        assert!(ok * 10 >= total * 8, "{ok}/{total} near zero");
    }

    #[test]
    fn respects_strict_congest_bandwidth() {
        let g = gen::gnp(64, 0.2, 5);
        let scheme = SimilarityScheme::practical(0.25);
        // The σ-bit signature dominates; Lemma 2's stated message size is
        // Θ(ε⁻⁴ log(1/ν) + log log|U| + log max|S|) bits, modeled here by
        // σ_cap + a small header allowance.
        let config = congest::SimConfig {
            bandwidth: congest::Bandwidth::Strict(2048 + 64),
            ..SimConfig::seeded(2)
        };
        let result = run_neighborhood_similarity(&g, scheme, config, 3);
        assert!(result.is_ok(), "bandwidth exceeded: {:?}", result.err());
    }

    #[test]
    fn estimates_align_with_ground_truth_on_random_graph() {
        let g = gen::gnp(120, 0.3, 11);
        let scheme = SimilarityScheme::practical(0.25);
        let (est, _) = run_neighborhood_similarity(&g, scheme, SimConfig::seeded(5), 23).unwrap();
        let mut within = 0;
        let mut total = 0;
        for v in 0..g.n() as NodeId {
            let nbrs = g.neighbors(v);
            for (i, &u) in nbrs.iter().enumerate() {
                let truth = g.common_neighbors(v, u) as f64;
                let bound = 0.25 * g.degree(v).max(g.degree(u)) as f64;
                total += 1;
                if (est[v as usize][i] - truth).abs() <= bound {
                    within += 1;
                }
            }
        }
        assert!(
            within as f64 >= 0.85 * total as f64,
            "{within}/{total} edges within the ε bound"
        );
    }
}
