//! Parameter plumbing for the §3.2 two-party procedures.
//!
//! Algorithm 1 (and 2) fixes, for an edge with sets `S_u, S_v`:
//!
//! * scale-up factor `k = ⌈96 ε⁻³ ln(12/ν) / max(|S_u|,|S_v|)⌉`,
//! * hash range `λ = 8·max(|S_u|,|S_v|)·k/ε`,
//! * Lemma 1 parameters `β = ε/4`, `α = ε²/8`.
//!
//! [`SimilarityScheme::paper`] uses these verbatim; the σ that falls out of
//! Lemma 1 is `Θ(ε⁻⁴ log(1/ν))` bits, which is the paper's message-size
//! claim (Lemma 2). [`SimilarityScheme::practical`] keeps the same λ and
//! scale-up formulas but caps σ and `k` at laptop-friendly values (the
//! estimate degrades gracefully — E4 measures by how much).

use prand::RepParams;

/// Parameters shared by the two parties of `EstimateSimilarity` /
/// `JointSample`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimilarityScheme {
    /// Target accuracy ε: the estimate is within `ε·max(|S_u|,|S_v|)`.
    pub eps: f64,
    /// Failure probability ν.
    pub nu: f64,
    /// Cap on the observation window σ (`u64::MAX` = the paper's value).
    pub sigma_cap: u64,
    /// Cap on the scale-up factor `k` (`u64::MAX` = the paper's value).
    pub scale_cap: u64,
    /// Family index width in bits (`2^family_bits` members).
    pub family_bits: u32,
}

impl SimilarityScheme {
    /// Verbatim paper parameters for accuracy `eps` and failure
    /// probability `nu`.
    ///
    /// # Panics
    ///
    /// Panics unless `eps ∈ (0, 1)` and `nu ∈ (0, 1)`.
    pub fn paper(eps: f64, nu: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(nu > 0.0 && nu < 1.0, "nu must be in (0,1), got {nu}");
        SimilarityScheme {
            eps,
            nu,
            sigma_cap: u64::MAX,
            scale_cap: u64::MAX,
            family_bits: 20,
        }
    }

    /// Laptop-scale parameters: σ capped at 2048 bits, scale-up at 32,
    /// 16-bit family indices, ν = 10⁻³.
    ///
    /// Note Lemma 2's message size is itself `Θ(ε⁻⁴ log(1/ν))` bits — the
    /// σ-bit signatures *are* the dominating cost in the paper too; the cap
    /// only curbs the constant (the verbatim σ for ε = 1/4 is ≈ 10⁶ bits).
    pub fn practical(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        SimilarityScheme {
            eps,
            nu: 1e-3,
            sigma_cap: 2048,
            scale_cap: 32,
            family_bits: 16,
        }
    }

    /// The scale-up factor `k` of Alg. 1 step 2 for the given max set size.
    pub fn scale_factor(&self, max_len: usize) -> u64 {
        if max_len == 0 {
            return 1;
        }
        let k = (96.0 * self.eps.powi(-3) * (12.0 / self.nu).ln() / max_len as f64).ceil();
        (k as u64).clamp(1, self.scale_cap)
    }

    /// The representative-family parameters for the given (already
    /// scaled-up) max set size: `λ = 8·max/ε`, `β = ε/4`, `α = ε²/8`, σ
    /// from Lemma 1 capped at `sigma_cap`.
    pub fn rep_params(&self, scaled_max_len: usize) -> RepParams {
        let lambda = ((8.0 * scaled_max_len.max(1) as f64 / self.eps).ceil() as u64).max(2);
        let alpha = self.eps * self.eps / 8.0;
        let beta = self.eps / 4.0;
        // Lemma 1's window for these parameters.
        let sigma_lemma = (3.0 / (alpha * beta * beta) * (8.0 / self.nu).ln()).ceil() as u64;
        let sigma = sigma_lemma.min(self.sigma_cap).min(lambda);
        RepParams::practical(alpha, beta, lambda, sigma, self.family_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_uses_lemma_window() {
        let s = SimilarityScheme::paper(0.5, 0.01);
        let p = s.rep_params(100);
        assert_eq!(p.lambda, (8.0 * 100.0 / 0.5) as u64);
        // σ = 3/(αβ²)·ln(8/ν) with α = 1/32, β = 1/8 → 3·32·64·ln(800).
        let expected = (3.0 * 32.0 * 64.0 * (800.0f64).ln()).ceil() as u64;
        assert_eq!(p.sigma, expected.min(p.lambda));
    }

    #[test]
    fn practical_scheme_caps_sigma() {
        let s = SimilarityScheme::practical(0.1);
        let p = s.rep_params(1000);
        assert!(p.sigma <= 2048);
        assert!(p.sigma <= p.lambda);
    }

    #[test]
    fn scale_factor_large_sets_is_one() {
        let s = SimilarityScheme::practical(0.5);
        assert_eq!(s.scale_factor(1_000_000), 1);
    }

    #[test]
    fn scale_factor_small_sets_grows() {
        let s = SimilarityScheme::paper(0.5, 0.01);
        let k = s.scale_factor(10);
        // 96·8·ln(1200)/10 ≈ 544.
        assert!(k > 100, "k = {k}");
        let capped = SimilarityScheme::practical(0.5).scale_factor(10);
        assert!(capped <= 32);
    }

    #[test]
    fn empty_set_scale_is_one() {
        assert_eq!(SimilarityScheme::practical(0.25).scale_factor(0), 1);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn rejects_bad_eps() {
        let _ = SimilarityScheme::paper(1.5, 0.1);
    }
}
