//! Estimation and sampling primitives from §3 of *Overcoming Congestion in
//! Distributed Coloring*.
//!
//! * [`estimate_similarity`] — `EstimateSimilarity(ε)` (Alg. 1, Lemma 2):
//!   two parties estimate `|S_u ∩ S_v|` within `ε·max(|S_u|,|S_v|)` in
//!   `O(1)` short messages;
//! * [`joint_sample`] — `JointSample(ε)` (Alg. 2, Lemma 3): the parties
//!   sample a *common* element of the intersection;
//! * [`NeighborhoodSimilarity`] — the per-edge CONGEST protocol estimating
//!   `|N(u) ∩ N(v)|` on every edge at once (4 rounds);
//! * [`estimate_sparsity`] — `EstimateSparsity(ε)` (Alg. 3, Lemmas 4–5),
//!   global and local variants;
//! * [`find_triangle_rich_edges`] — local triangle finding (Theorem 2);
//! * [`find_four_cycle_rich_wedges`] — local four-cycle finding
//!   (Theorem 3).
//!
//! # Example
//!
//! ```
//! use estimate::{estimate_similarity, SimilarityScheme};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let su: Vec<u64> = (0..300).collect();
//! let sv: Vec<u64> = (150..450).collect();
//! let mut rng = StdRng::seed_from_u64(1);
//! let out = estimate_similarity(&SimilarityScheme::practical(0.25), &su, &sv, 9, &mut rng);
//! // True intersection is 150; the estimate is within ε·300 = 75 w.h.p.
//! assert!((out.estimate - 150.0).abs() <= 75.0 + 1e-9);
//! ```

#![warn(missing_docs)]

mod four_cycles;
mod joint_sample;
mod neighborhood;
mod scheme;
mod similarity;
mod sparsity;
mod triangles;

pub use four_cycles::{find_four_cycle_rich_wedges, FcMsg, FourCycleFinder, FourCycleReport};
pub use joint_sample::{
    joint_sample, joint_sample_many, JointSampleManyOutcome, JointSampleOutcome,
};
pub use neighborhood::{run_neighborhood_similarity, NeighborhoodSimilarity, NsMsg};
pub use scheme::SimilarityScheme;
pub use similarity::{
    estimate_similarity, exact_intersection, intersection_size, window_signature,
    window_signature_reference, EdgeSetup, SimilarityEstimate,
};
pub use sparsity::{estimate_sparsity, SparsityEstimates};
pub use triangles::{find_triangle_rich_edges, TriangleReport};
