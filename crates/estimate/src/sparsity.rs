//! `EstimateSparsity(ε)` — Algorithm 3, Lemmas 4–5.
//!
//! Every node estimates its sparsity (Definition 1) from the per-edge
//! neighborhood-similarity estimates: the global variant
//! `ζ̂ = (Δ−1)/2 − (1/2Δ)·Σ_u ŝ_u` and the local variant with `d_v` in
//! place of `Δ`.
//!
//! The local variant implements the Lemma 5 tweak: neighbors of degree
//! `≥ 2·d_v` are excluded from the estimated sum and counted as fully
//! overlapping (`ŝ_u = d_v`), because `EstimateSimilarity`'s error scale
//! `ε·max(d_u, d_v)` is useless when `d_u ≫ d_v`; under Lemma 5's
//! hypothesis (few such neighbors) the induced error stays `O(ε·d_v)`.

use crate::neighborhood::run_neighborhood_similarity;
use crate::scheme::SimilarityScheme;
use congest::{RunReport, SimConfig, SimError};
use graphs::{Graph, NodeId};

/// Per-node sparsity estimates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparsityEstimates {
    /// Estimated global sparsity `ζ̂_v^{[Δ]}` per node.
    pub global: Vec<f64>,
    /// Estimated local sparsity `ζ̂_v^{[d]}` per node (Lemma 5 tweak).
    pub local: Vec<f64>,
}

/// Run `EstimateSparsity(ε)` on the whole graph.
///
/// `Δ` is read from the graph (the standard CONGEST assumption that global
/// parameters `n, Δ` are known to all nodes).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Example
///
/// ```
/// use estimate::{estimate_sparsity, SimilarityScheme};
/// use congest::SimConfig;
///
/// let g = graphs::gen::complete(16);
/// let (est, _) =
///     estimate_sparsity(&g, SimilarityScheme::practical(0.25), SimConfig::seeded(1), 7)
///         .unwrap();
/// // A clique is maximally dense: estimated sparsity near zero.
/// assert!(est.local[0] < 0.25 * 15.0);
/// ```
pub fn estimate_sparsity(
    g: &Graph,
    scheme: SimilarityScheme,
    config: SimConfig,
    seed: u64,
) -> Result<(SparsityEstimates, RunReport), SimError> {
    let (per_edge, report) = run_neighborhood_similarity(g, scheme, config, seed)?;
    let delta = g.max_degree() as f64;
    let mut global = vec![0.0; g.n()];
    let mut local = vec![0.0; g.n()];
    for v in 0..g.n() {
        let dv = g.degree(v as NodeId) as f64;
        let nbrs = g.neighbors(v as NodeId);
        if delta > 0.0 {
            let sum: f64 = per_edge[v].iter().sum();
            global[v] = ((delta - 1.0) / 2.0 - sum / (2.0 * delta)).max(0.0);
        }
        if dv > 0.0 {
            // Lemma 5 tweak: high-degree neighbors count as fully
            // overlapping.
            let mut sum = 0.0;
            for (i, &u) in nbrs.iter().enumerate() {
                if g.degree(u) as f64 >= 2.0 * dv {
                    sum += dv;
                } else {
                    sum += per_edge[v][i].min(dv);
                }
            }
            local[v] = ((dv - 1.0) / 2.0 - sum / (2.0 * dv)).max(0.0);
        }
    }
    Ok((SparsityEstimates { global, local }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{analysis, gen};

    #[test]
    fn clique_members_look_dense() {
        let g = gen::complete(20);
        let (est, report) = estimate_sparsity(
            &g,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(2),
            3,
        )
        .unwrap();
        assert!(report.completed);
        for v in 0..20 {
            assert!(
                est.local[v] <= 0.25 * 19.0,
                "node {v}: ζ̂ = {}",
                est.local[v]
            );
            assert!(est.global[v] <= 0.25 * 19.0);
        }
    }

    #[test]
    fn star_center_looks_sparse() {
        let g = gen::star(24);
        let (est, _) = estimate_sparsity(
            &g,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(4),
            9,
        )
        .unwrap();
        let truth = analysis::local_sparsity(&g, 0); // (24·23/2)/24 = 11.5
        assert!(
            (est.local[0] - truth).abs() <= 0.3 * 24.0,
            "ζ̂ = {}, ζ = {truth}",
            est.local[0]
        );
    }

    #[test]
    fn global_estimates_track_truth_on_gnp() {
        let g = gen::gnp(100, 0.25, 6);
        let (est, _) = estimate_sparsity(
            &g,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(8),
            21,
        )
        .unwrap();
        let delta = g.max_degree() as f64;
        let mut within = 0;
        for v in 0..g.n() {
            let truth = analysis::global_sparsity(&g, v as NodeId);
            if (est.global[v] - truth).abs() <= 0.35 * delta {
                within += 1;
            }
        }
        assert!(within >= 85, "{within}/100 nodes within bound");
    }

    #[test]
    fn local_estimates_with_uneven_degrees() {
        // Hub-and-spokes: spokes have high-degree neighbors; the Lemma 5
        // tweak keeps their local estimate finite and bounded by the max.
        let g = gen::hub_and_spokes(4, 30, 5);
        let (est, _) = estimate_sparsity(
            &g,
            SimilarityScheme::practical(0.25),
            SimConfig::seeded(3),
            13,
        )
        .unwrap();
        for v in 0..g.n() {
            let dv = g.degree(v as NodeId) as f64;
            assert!(
                est.local[v] <= dv / 2.0 + 1e-9,
                "node {v}: {}",
                est.local[v]
            );
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = gen::path(0);
        let (est, _) = estimate_sparsity(
            &g,
            SimilarityScheme::practical(0.5),
            SimConfig::seeded(1),
            1,
        )
        .unwrap();
        assert!(est.global.is_empty());
    }
}
