//! Local four-cycle finding — Theorem 3.
//!
//! "There exists an `O(ε⁻⁴)`-round CONGEST algorithm that, for each pair of
//! edges incident on the same vertex, detects w.h.p. when they are part of
//! `εΔ` 4-cycles."
//!
//! Protocol (proof of Theorem 3): each vertex `v` picks a random
//! representative hash function `h_v` and sends it to all neighbors, who
//! answer with the window signature of `N(u) ¬_{h_v} N(u)`. For each pair
//! of neighbors `u, u'`, `v` estimates `|N(u) ∩ N(u')|` from the two
//! signatures exactly as `EstimateSimilarity` would; the pair of edges
//! `(vu, vu')` lies on `|N(u) ∩ N(u')| − 1` four-cycles (the `−1` removes
//! `v` itself).

use congest::{Ctx, Message, Program, RunReport, SimConfig, SimError};
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use prand::{RepHash, RepHashFamily, RepParams};

/// Messages of the four-cycle detector.
#[derive(Clone, Debug)]
pub enum FcMsg {
    /// The center announces its chosen family index.
    Index {
        /// Family member index.
        index: u64,
        /// Bit cost `⌈log₂ F⌉`.
        bits: u32,
    },
    /// A neighbor returns its σ-bit signature under the center's hash.
    Signature {
        /// Packed bitmap of `h_v(N(u) ¬ N(u))`.
        bitmap: Vec<u64>,
        /// Window size σ.
        sigma: u64,
    },
}

impl Message for FcMsg {
    fn bit_cost(&self) -> u64 {
        match self {
            FcMsg::Index { bits, .. } => u64::from(*bits),
            FcMsg::Signature { sigma, .. } => *sigma,
        }
    }
}

/// The shared Lemma 1 parameters all nodes derive from `(ε, Δ)`.
fn shared_params(eps: f64, delta: usize) -> RepParams {
    // λ = 8Δ/ε with β = ε/4 covers neighborhoods up to 2Δ; σ and the
    // family-index width follow the practical profile.
    let lambda = ((8.0 * delta.max(1) as f64 / eps).ceil() as u64).max(2);
    let alpha = eps * eps / 8.0;
    let beta = eps / 4.0;
    let sigma_lemma = (3.0 / (alpha * beta * beta) * (8.0f64 / 1e-3).ln()).ceil() as u64;
    let sigma = sigma_lemma.min(512).min(lambda);
    RepParams::practical(alpha, beta, lambda, sigma, 16)
}

/// Wedge-centric program: after 3 rounds, each node knows an estimate of
/// `|N(u) ∩ N(u')|` for every pair of its neighbors.
#[derive(Clone, Debug)]
pub struct FourCycleFinder {
    base_seed: u64,
    node: NodeId,
    params: RepParams,
    my_index: u64,
    /// Signatures received, aligned with sorted neighbor positions.
    signatures: Vec<Option<Vec<u64>>>,
    /// Pairs `(u, u′, estimated 4-cycles)` for all neighbor pairs.
    pairs: Vec<(NodeId, NodeId, f64)>,
    done: bool,
}

impl FourCycleFinder {
    /// A program for node `node`; all nodes must share `seed`, `eps` and
    /// the graph's `Δ` (global knowledge).
    pub fn new(seed: u64, node: NodeId, eps: f64, delta: usize) -> Self {
        FourCycleFinder {
            base_seed: seed,
            node,
            params: shared_params(eps, delta),
            my_index: 0,
            signatures: Vec::new(),
            pairs: Vec::new(),
            done: false,
        }
    }

    /// All neighbor pairs with their estimated four-cycle counts
    /// (valid once done).
    pub fn pairs(&self) -> &[(NodeId, NodeId, f64)] {
        &self.pairs
    }

    /// Estimate for a specific wedge `(u, v, u')` centered at this node.
    pub fn wedge_estimate(&self, u: NodeId, u2: NodeId) -> Option<f64> {
        let (a, b) = (u.min(u2), u.max(u2));
        self.pairs
            .iter()
            .find(|&&(x, y, _)| x == a && y == b)
            .map(|&(_, _, e)| e)
    }

    /// The family of center `c` — every node can reconstruct it.
    fn family_of(&self, c: NodeId) -> RepHashFamily {
        RepHashFamily::new(mix2(self.base_seed, u64::from(c)), self.params)
    }

    fn my_hash(&self) -> RepHash {
        self.family_of(self.node).member(self.my_index)
    }
}

impl Program for FourCycleFinder {
    type Msg = FcMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                self.signatures = vec![None; ctx.degree()];
                let family = self.family_of(self.node);
                self.my_index = family.sample_index(ctx.rng());
                ctx.broadcast(FcMsg::Index {
                    index: self.my_index,
                    bits: family.index_bits(),
                });
            }
            1 => {
                // Answer every center with the signature of the own
                // neighborhood under *their* hash.
                let own: Vec<u64> = ctx.neighbors().iter().map(|&w| u64::from(w)).collect();
                let msgs: Vec<(NodeId, FcMsg)> = ctx
                    .inbox()
                    .iter()
                    .map(|&(center, ref msg)| {
                        let FcMsg::Index { index, .. } = msg else {
                            unreachable!("round 1 carries only Index messages");
                        };
                        let h = self.family_of(center).member(*index);
                        let t = h.isolated(&own, &own);
                        (
                            center,
                            FcMsg::Signature {
                                bitmap: h.window_bitmap(&t),
                                sigma: h.sigma(),
                            },
                        )
                    })
                    .collect();
                for (to, msg) in msgs {
                    ctx.send(to, msg);
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let FcMsg::Signature { bitmap, .. } = msg {
                        let i = ctx
                            .neighbor_index(from)
                            .expect("signature from non-neighbor");
                        self.signatures[i] = Some(bitmap.clone());
                    }
                }
                let scale = self.params.lambda as f64 / self.params.sigma as f64;
                let nbrs = ctx.neighbors();
                for i in 0..nbrs.len() {
                    let Some(si) = &self.signatures[i] else {
                        continue;
                    };
                    for j in (i + 1)..nbrs.len() {
                        let Some(sj) = &self.signatures[j] else {
                            continue;
                        };
                        let joint: usize = si
                            .iter()
                            .zip(sj)
                            .map(|(a, b)| (a & b).count_ones() as usize)
                            .sum();
                        // |N(u) ∩ N(u')| estimate, minus the center itself.
                        let est = (joint as f64 * scale - 1.0).max(0.0);
                        self.pairs.push((nbrs[i], nbrs[j], est));
                    }
                }
                debug_assert_eq!(self.my_hash().sigma(), self.params.sigma);
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Result of the four-cycle detector.
#[derive(Clone, Debug, Default)]
pub struct FourCycleReport {
    /// Per center node: all neighbor pairs with estimates.
    pub wedges: Vec<Vec<(NodeId, NodeId, f64)>>,
    /// Flagged wedges `(center, u, u')` with estimate ≥ εΔ/2.
    pub flagged: Vec<(NodeId, NodeId, NodeId)>,
    /// The applied threshold `εΔ`.
    pub threshold: f64,
}

/// Detect, for every wedge, whether its two edges lie on ≥ `εΔ` 4-cycles.
///
/// # Errors
///
/// Propagates engine errors.
pub fn find_four_cycle_rich_wedges(
    g: &Graph,
    eps: f64,
    config: SimConfig,
    seed: u64,
) -> Result<(FourCycleReport, RunReport), SimError> {
    let delta = g.max_degree();
    let programs = (0..g.n())
        .map(|v| FourCycleFinder::new(seed, v as NodeId, eps, delta))
        .collect();
    let (programs, report) = congest::run(g, programs, config)?;
    let threshold = eps * delta as f64;
    let mut wedges = Vec::with_capacity(g.n());
    let mut flagged = Vec::new();
    for (v, p) in programs.into_iter().enumerate() {
        for &(u, u2, est) in p.pairs() {
            if est >= threshold / 2.0 {
                flagged.push((v as NodeId, u, u2));
            }
        }
        wedges.push(p.pairs);
    }
    Ok((
        FourCycleReport {
            wedges,
            flagged,
            threshold,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn planted_wedge_is_flagged() {
        // Wedge (2, 0, 3) closes 25 four-cycles; Δ ≈ 26.
        let g = gen::four_cycle_rich(120, 25, 0.03, 5);
        let (rep, run) = find_four_cycle_rich_wedges(&g, 0.5, SimConfig::seeded(2), 9).unwrap();
        assert!(run.completed);
        assert_eq!(run.rounds, 3);
        assert!(
            rep.flagged.contains(&(0, 2, 3)),
            "wedge (0,2,3) missing from {:?}",
            &rep.flagged[..rep.flagged.len().min(10)]
        );
    }

    #[test]
    fn sparse_random_graph_flags_few_wedges() {
        let g = gen::gnp(150, 0.03, 8);
        let (rep, _) = find_four_cycle_rich_wedges(&g, 0.8, SimConfig::seeded(3), 11).unwrap();
        // Wedges in sparse G(n,p) close O(np²) ≪ εΔ four-cycles.
        let total_wedges: usize = rep.wedges.iter().map(|w| w.len()).sum();
        assert!(
            rep.flagged.len() * 20 <= total_wedges.max(1),
            "{} of {} wedges flagged",
            rep.flagged.len(),
            total_wedges
        );
    }

    #[test]
    fn wedge_estimate_lookup() {
        let g = gen::four_cycle_rich(60, 10, 0.0, 1);
        let delta = g.max_degree();
        let programs = (0..g.n())
            .map(|v| FourCycleFinder::new(4, v as NodeId, 0.5, delta))
            .collect();
        let (programs, _) = congest::run(&g, programs, SimConfig::seeded(1)).unwrap();
        let center = &programs[0];
        let est = center.wedge_estimate(2, 3).expect("wedge exists");
        assert!(est > 2.0, "estimate {est} too low for 10 planted cycles");
        assert_eq!(center.wedge_estimate(3, 2), center.wedge_estimate(2, 3));
    }

    #[test]
    fn k23_wedge_estimates_one_cycle() {
        // In K_{2,3} the wedge (2, 0, 3) closes exactly 1 four-cycle.
        let g = gen::complete_bipartite(2, 3);
        let programs = (0..g.n())
            .map(|v| FourCycleFinder::new(6, v as NodeId, 0.5, g.max_degree()))
            .collect();
        let (programs, _) = congest::run(&g, programs, SimConfig::seeded(5)).unwrap();
        let est = programs[0].wedge_estimate(2, 3).expect("wedge exists");
        // Tiny sets: the estimate is noisy but must be small and finite.
        assert!(est <= 6.0, "estimate {est}");
    }
}
