//! `EstimateSimilarity(ε)` — Algorithm 1, Lemma 2.
//!
//! Two parties holding sets `S_u, S_v ⊆ U` estimate `|S_u ∩ S_v|` within
//! `ε·max(|S_u|, |S_v|)` using `O(1)` message flights of
//! `O(ε⁻⁴ log(1/ν) + log log|U| + log max(|S_u|,|S_v|))` bits:
//!
//! 1. scale the sets up by `k` if they are too small (step 2–3);
//! 2. jointly pick a representative hash function `h` (step 5) — realized
//!    by the lower-id party drawing the family index and sending it;
//! 3. exchange `h(T_u)`, `h(T_v)` where `T_u = S_u ¬_h S_u` (the window
//!    image of the collision-free part, a σ-bit bitmap, step 6);
//! 4. return `|h(T_u) ∩ h(T_v)|·λ/(σ·k)` (step 7).

use crate::scheme::SimilarityScheme;
use congest::BitTally;
use prand::{RepHash, RepHashFamily};
use rand::Rng;

/// Outcome of one `EstimateSimilarity` execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimilarityEstimate {
    /// The estimate of `|S_u ∩ S_v|`.
    pub estimate: f64,
    /// Communication transcript (Lemma 2's cost claim).
    pub tally: BitTally,
}

/// Run `EstimateSimilarity` on sets `su`, `sv` (sorted, deduplicated).
///
/// `seed` derives the shared hash family (public advice); `rng` supplies
/// the joint randomness of step 5 (in CONGEST the lower-id endpoint draws
/// it and sends the index, which is what the tally charges).
///
/// # Panics
///
/// Panics (debug only) if `su` or `sv` is unsorted.
///
/// # Example
///
/// ```
/// use estimate::{estimate_similarity, SimilarityScheme};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let su: Vec<u64> = (0..200).collect();
/// let sv: Vec<u64> = (100..300).collect();
/// let mut rng = StdRng::seed_from_u64(7);
/// let out = estimate_similarity(&SimilarityScheme::practical(0.25), &su, &sv, 42, &mut rng);
/// assert!((out.estimate - 100.0).abs() <= 0.25 * 200.0 + 1e-9);
/// ```
pub fn estimate_similarity<R: Rng + ?Sized>(
    scheme: &SimilarityScheme,
    su: &[u64],
    sv: &[u64],
    seed: u64,
    rng: &mut R,
) -> SimilarityEstimate {
    debug_assert!(su.windows(2).all(|w| w[0] < w[1]), "su must be sorted");
    debug_assert!(sv.windows(2).all(|w| w[0] < w[1]), "sv must be sorted");
    let mut tally = BitTally::new();
    // Step 1: empty sets have empty intersections.
    if su.is_empty() || sv.is_empty() {
        return SimilarityEstimate {
            estimate: 0.0,
            tally,
        };
    }
    let setup = EdgeSetup::new(scheme, su.len(), sv.len(), seed);
    let h = setup.pick_hash(rng, &mut tally);
    let bu = window_signature(&setup, &h, su);
    let bv = window_signature(&setup, &h, sv);
    // Step 6: exchange the σ-bit signatures.
    tally.exchange(setup.sigma());
    let j = intersection_size(&bu, &bv);
    SimilarityEstimate {
        estimate: setup.descale(j),
        tally,
    }
}

/// Shared per-edge setup: scale factor, family, σ — everything both
/// parties derive from `(scheme, |S_u|, |S_v|, seed)` without
/// communication. Public so downstream protocols (the almost-clique
/// decomposition in the `d1lc` crate) can reuse Alg. 1's machinery.
#[derive(Clone, Copy, Debug)]
pub struct EdgeSetup {
    /// The shared representative hash family for this edge.
    pub family: RepHashFamily,
    /// The Alg. 1 step-2 scale-up factor.
    pub k: u64,
}

impl EdgeSetup {
    /// Derive the setup both endpoints compute without communication.
    pub fn new(scheme: &SimilarityScheme, su_len: usize, sv_len: usize, seed: u64) -> Self {
        let max_len = su_len.max(sv_len);
        let k = scheme.scale_factor(max_len);
        let params = scheme.rep_params(max_len * k as usize);
        EdgeSetup {
            family: RepHashFamily::new(seed, params),
            k,
        }
    }

    /// Step 5: joint hash choice; the index ride costs `⌈log₂ F⌉` bits in
    /// one direction.
    pub fn pick_hash<R: Rng + ?Sized>(&self, rng: &mut R, tally: &mut BitTally) -> RepHash {
        let index = self.family.sample_index(rng);
        tally.a_to_b(u64::from(self.family.index_bits()));
        self.family.member(index)
    }

    /// The observation window σ (signature length in bits).
    pub fn sigma(&self) -> u64 {
        self.family.params().sigma
    }

    /// Step 7's rescaling: window count → intersection estimate.
    pub fn descale(&self, window_count: usize) -> f64 {
        let p = self.family.params();
        window_count as f64 * p.lambda as f64 / (p.sigma as f64 * self.k as f64)
    }
}

/// Compute the σ-bit signature `h(T)` with `T = S' ¬_h S'` on the scaled-up
/// set `S' = S × [k]` (element `x` becomes `x·k + i` for `i ∈ [k]`; the
/// universe is relabeled injectively, callers keep colors below `2^63/k`).
///
/// Because the isolated-set operator is applied with `A = B = S'`, a
/// window bit is set iff **exactly one** element of `S'` hashes to it, so
/// the signature is computed in a single hashing pass over `S'` with a
/// once/twice bit pair — no intermediate scaled vector, no sort, no
/// per-edge hash map, and every element hashed exactly once (the
/// equivalence with `isolated` + `window_bitmap` is pinned by a test).
/// This is the inner loop of the ACD similarity estimates, evaluated per
/// directed edge.
pub fn window_signature(setup: &EdgeSetup, h: &RepHash, s: &[u64]) -> Vec<u64> {
    let sigma = h.sigma();
    let words = sigma.div_ceil(64) as usize;
    let mut once = vec![0u64; words];
    let mut twice = vec![0u64; words];
    let mut tally = |value: u64| {
        let hv = h.hash(value);
        if hv < sigma {
            let (w, bit) = ((hv / 64) as usize, 1u64 << (hv % 64));
            twice[w] |= once[w] & bit;
            once[w] |= bit;
        }
    };
    if setup.k == 1 {
        for &x in s {
            tally(x);
        }
    } else {
        for &x in s {
            for i in 0..setup.k {
                tally(x * setup.k + i);
            }
        }
    }
    for (o, t) in once.iter_mut().zip(&twice) {
        *o &= !t;
    }
    once
}

/// The pre-fusion [`window_signature`]: materialize the scaled set, sort
/// a copy, apply the isolated-set operator, pack the bitmap. **Preserved
/// verbatim as a baseline** — `tests` pin it equal to the fused
/// implementation, and the E0b microbench's pre-PR arm runs the ACD
/// estimates through it to measure what the fusion bought.
pub fn window_signature_reference(setup: &EdgeSetup, h: &RepHash, s: &[u64]) -> Vec<u64> {
    if setup.k == 1 {
        // Force the general (hash-map) isolated path, as the original
        // always took: pass a distinct, sorted copy as `b`.
        let mut sorted = s.to_vec();
        sorted.sort_unstable();
        let t = h.isolated(s, &sorted);
        return h.window_bitmap(&t);
    }
    let scaled: Vec<u64> = s
        .iter()
        .flat_map(|&x| (0..setup.k).map(move |i| x * setup.k + i))
        .collect();
    let mut sorted = scaled.clone();
    sorted.sort_unstable();
    let t = h.isolated(&scaled, &sorted);
    h.window_bitmap(&t)
}

/// `|h(T_u) ∩ h(T_v)|` from the two bitmaps.
pub fn intersection_size(bu: &[u64], bv: &[u64]) -> usize {
    bu.iter()
        .zip(bv)
        .map(|(a, b)| (a & b).count_ones() as usize)
        .sum()
}

/// Ground truth `|S_u ∩ S_v|` for sorted slices (test/benchmark helper).
pub fn exact_intersection(su: &[u64], sv: &[u64]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < su.len() && j < sv.len() {
        match su[i].cmp(&sv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(su: &[u64], sv: &[u64], eps: f64, seed: u64, trial: u64) -> SimilarityEstimate {
        let mut rng = StdRng::seed_from_u64(trial);
        estimate_similarity(&SimilarityScheme::practical(eps), su, sv, seed, &mut rng)
    }

    /// The fused once/twice signature must equal the preserved
    /// `isolated(S', S')` + `window_bitmap` reference composition.
    #[test]
    fn window_signature_matches_isolated_bitmap_reference() {
        let scheme = SimilarityScheme::practical(1.0 / 12.0);
        for (len, seed) in [(0usize, 1u64), (1, 7), (5, 2), (40, 3), (200, 4)] {
            let s: Vec<u64> = (0..len as u64).map(|i| i * 7 + seed % 3).collect();
            let setup = EdgeSetup::new(&scheme, s.len().max(1), s.len().max(1), seed);
            for index in [0u64, 3] {
                let h = setup.family.member(index);
                assert_eq!(
                    window_signature(&setup, &h, &s),
                    window_signature_reference(&setup, &h, &s),
                    "len={len} seed={seed} index={index} k={}",
                    setup.k
                );
            }
        }
        // k == 1 regime (scale-up disabled): same law.
        let flat = SimilarityScheme {
            scale_cap: 1,
            ..scheme
        };
        let big: Vec<u64> = (0..4000u64).map(|i| i * 3).collect();
        let setup = EdgeSetup::new(&flat, big.len(), big.len(), 11);
        assert_eq!(setup.k, 1, "scale_cap 1 must pin k");
        let h = setup.family.member(1);
        assert_eq!(
            window_signature(&setup, &h, &big),
            window_signature_reference(&setup, &h, &big)
        );
    }

    #[test]
    fn empty_sets_give_zero() {
        let out = run_once(&[], &[1, 2, 3], 0.25, 1, 1);
        assert_eq!(out.estimate, 0.0);
        assert_eq!(out.tally.total_bits(), 0);
    }

    #[test]
    fn identical_sets_estimate_their_size() {
        let s: Vec<u64> = (0..500).collect();
        let mut ok = 0;
        for trial in 0..20 {
            let out = run_once(&s, &s, 0.25, 9, trial);
            if (out.estimate - 500.0).abs() <= 0.25 * 500.0 {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 trials within ε bound");
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let su: Vec<u64> = (0..400).collect();
        let sv: Vec<u64> = (1000..1400).collect();
        let mut ok = 0;
        for trial in 0..20 {
            let out = run_once(&su, &sv, 0.25, 5, trial);
            if out.estimate <= 0.25 * 400.0 {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 trials within ε bound");
    }

    #[test]
    fn half_overlap_is_recovered() {
        let su: Vec<u64> = (0..600).collect();
        let sv: Vec<u64> = (300..900).collect();
        let mut ok = 0;
        for trial in 0..30 {
            let out = run_once(&su, &sv, 0.25, 3, trial);
            if (out.estimate - 300.0).abs() <= 0.25 * 600.0 {
                ok += 1;
            }
        }
        assert!(ok >= 27, "only {ok}/30 trials within ε bound");
    }

    #[test]
    fn small_sets_use_scale_up() {
        // Sets of size 8 trigger k > 1; estimates should still be sane.
        let su: Vec<u64> = (0..8).collect();
        let sv: Vec<u64> = (4..12).collect();
        let mut total = 0.0;
        let trials = 50;
        for trial in 0..trials {
            total += run_once(&su, &sv, 0.5, 17, trial).estimate;
        }
        let mean = total / trials as f64;
        assert!((mean - 4.0).abs() < 3.0, "mean estimate {mean}, truth 4");
    }

    #[test]
    fn message_cost_matches_lemma2_shape() {
        // One index flight + two σ-bit signatures.
        let su: Vec<u64> = (0..300).collect();
        let sv: Vec<u64> = (0..300).collect();
        let scheme = SimilarityScheme::practical(0.25);
        let mut rng = StdRng::seed_from_u64(0);
        let out = estimate_similarity(&scheme, &su, &sv, 1, &mut rng);
        let setup = EdgeSetup::new(&scheme, 300, 300, 1);
        let expected = u64::from(setup.family.index_bits()) + 2 * setup.sigma();
        assert_eq!(out.tally.total_bits(), expected);
        assert_eq!(out.tally.flights(), 3);
    }

    #[test]
    fn exact_intersection_helper() {
        assert_eq!(exact_intersection(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(exact_intersection(&[], &[1]), 0);
        assert_eq!(exact_intersection(&[5], &[5]), 1);
    }

    #[test]
    fn deterministic_given_seed_and_rng() {
        let su: Vec<u64> = (0..100).collect();
        let sv: Vec<u64> = (50..150).collect();
        let a = run_once(&su, &sv, 0.25, 2, 7);
        let b = run_once(&su, &sv, 0.25, 2, 7);
        assert_eq!(a, b);
    }
}
